//! In-memory request store with time-range and group-by helpers.
//!
//! A store holds one dataset's records (one of the four sampled datasets of
//! §3.1). Records arrive roughly time-ordered from the simulation driver;
//! the store sorts lazily on first query and then serves date-range slices
//! by binary search. Group-by helpers build the (entity → observations)
//! maps that every analysis starts from.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use crate::columns::{ColumnSlice, ColumnStore};
use crate::intern::EntityTables;
use crate::record::RequestRecord;
use crate::time::{DateRange, SimDate};
use crate::UserId;

/// A sorted collection of request records.
#[derive(Debug, Clone, Default)]
pub struct RequestStore {
    records: Vec<RequestRecord>,
    sorted: bool,
}

impl RequestStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: RequestRecord) {
        self.records.push(rec);
        self.sorted = false;
    }

    /// Absorbs all records of `other`, preserving `other`'s internal order
    /// after `self`'s own records. Used by the sharded driver to merge
    /// shard-local stores in shard-index order, which keeps the stable
    /// timestamp sort (and therefore every downstream slice) byte-identical
    /// to a serial run.
    ///
    /// When both stores are already sorted and `other`'s records start no
    /// earlier than `self`'s end, the concatenation is itself sorted and the
    /// flag is preserved — shard merges of non-overlapping time slices skip
    /// the full re-sort. Overlapping merges still produce the exact serial
    /// order because the eventual sort is stable over the append order.
    /// The merged store also reserves exactly: shard-local stores arrive
    /// with growth-doubling over-allocation, and a merge of many shards
    /// would otherwise strand the sum of their slack for the lifetime of
    /// the study.
    pub fn extend_from(&mut self, other: RequestStore) {
        if self.records.is_empty() {
            *self = other;
            self.records.shrink_to_fit();
            return;
        }
        if other.records.is_empty() {
            return;
        }
        let still_sorted = self.sorted
            && other.sorted
            && self.records.last().map(|r| r.ts) <= other.records.first().map(|r| r.ts);
        self.records.reserve_exact(other.records.len());
        self.records.extend(other.records);
        self.sorted = still_sorted;
    }

    /// The records' heap capacity (diagnostic; pinned by the merge test).
    pub fn capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Iterates the records in raw (unsorted) arrival order — for building
    /// intern tables before freezing, where order is irrelevant.
    pub fn iter_unordered(&self) -> impl Iterator<Item = &RequestRecord> + Clone {
        self.records.iter()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sorts records by timestamp (stable w.r.t. equal timestamps). Called
    /// automatically by queries; exposed for explicit pre-sorting. Runs as
    /// a stable LSB radix permutation over the packed timestamp seconds —
    /// the same order `sort_by_key(|r| r.ts)` produced, at counting-sort
    /// cost (see [`crate::kernels`]).
    pub fn ensure_sorted(&mut self) {
        if !self.sorted {
            crate::kernels::radix_sort_records_by_ts(&mut self.records);
            self.sorted = true;
        }
    }

    /// All records, time-ordered.
    pub fn all(&mut self) -> &[RequestRecord] {
        self.ensure_sorted();
        &self.records
    }

    /// The records whose timestamps fall inside `range` (inclusive days).
    pub fn in_range(&mut self, range: DateRange) -> &[RequestRecord] {
        self.ensure_sorted();
        let (lo_ts, hi_ts) = range.ts_bounds();
        let lo = self.records.partition_point(|r| r.ts < lo_ts);
        let hi = self.records.partition_point(|r| r.ts <= hi_ts);
        &self.records[lo..hi]
    }

    /// The records on one day.
    pub fn on_day(&mut self, day: SimDate) -> &[RequestRecord] {
        self.in_range(DateRange::single(day))
    }

    /// Groups a record slice by user.
    pub fn group_by_user(records: &[RequestRecord]) -> HashMap<UserId, Vec<&RequestRecord>> {
        let mut m: HashMap<UserId, Vec<&RequestRecord>> = HashMap::new();
        for r in records {
            m.entry(r.user).or_default().push(r);
        }
        m
    }

    /// Groups a record slice by source address.
    pub fn group_by_ip(records: &[RequestRecord]) -> HashMap<IpAddr, Vec<&RequestRecord>> {
        let mut m: HashMap<IpAddr, Vec<&RequestRecord>> = HashMap::new();
        for r in records {
            m.entry(r.ip).or_default().push(r);
        }
        m
    }

    /// The distinct users appearing in a record slice, ascending — a
    /// radix sort over the raw ids followed by an in-place dedup
    /// (identical output to the old `sort_unstable` + `dedup`: the keys
    /// are plain integers, so any correct sort agrees).
    pub fn distinct_users(records: &[RequestRecord]) -> Vec<UserId> {
        let mut v: Vec<u64> = records.iter().map(|r| r.user.0).collect();
        crate::kernels::radix_sort_u64(&mut v);
        v.dedup();
        v.into_iter().map(UserId).collect()
    }

    /// Consumes the store into an immutable, pre-sorted, **columnar**
    /// [`FrozenStore`] encoded against intern tables built over this store
    /// alone — the convenience path for tests and standalone stores. The
    /// driver uses [`RequestStore::freeze_with`] so every store in a study
    /// shares one global table set.
    pub fn freeze(self) -> FrozenStore {
        let tables = Arc::new(EntityTables::build(self.records.iter()));
        self.freeze_with(tables)
    }

    /// Consumes the store into a columnar [`FrozenStore`] encoded against
    /// shared intern tables. Every address and user in this store must be
    /// interned in `tables`.
    pub fn freeze_with(mut self, tables: Arc<EntityTables>) -> FrozenStore {
        self.ensure_sorted();
        let cols = ColumnStore::encode(self.records.iter(), &tables);
        FrozenStore { cols, tables }
    }
}

/// An immutable, timestamp-sorted, columnar view of a completed dataset.
///
/// [`RequestStore`] keeps rows (cheap to append from the simulator);
/// freezing performs the final stable sort once and transposes the rows
/// into interned struct-of-arrays columns — 18 bytes/row instead of the
/// 40-byte `RequestRecord`. Range queries are binary searches over the
/// timestamp column returning [`ColumnSlice`] windows over `&self`, safe
/// to share across the parallel analysis engine's worker threads; rows
/// rematerialize lazily through [`ColumnSlice::records`], byte-for-byte
/// what the thawed store would have returned.
#[derive(Debug, Clone, Default)]
pub struct FrozenStore {
    cols: ColumnStore,
    tables: Arc<EntityTables>,
}

impl FrozenStore {
    /// Assembles a frozen store from already-sorted, already-encoded
    /// columns — the spill pipeline's entry point, where the timestamp
    /// sort happened streaming (per-segment sorts + k-way merge) rather
    /// than in memory. The columns must be timestamp-sorted (debug-
    /// asserted) and encoded against `tables`.
    pub fn from_sorted_parts(cols: ColumnStore, tables: Arc<EntityTables>) -> Self {
        debug_assert!(
            cols.ts.windows(2).all(|w| w[0] <= w[1]),
            "from_sorted_parts requires timestamp-sorted columns"
        );
        Self { cols, tables }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// All records, time-ordered.
    pub fn all(&self) -> ColumnSlice<'_> {
        self.cols.slice(0..self.cols.len(), &self.tables)
    }

    /// The records whose timestamps fall inside `range` (inclusive days).
    pub fn in_range(&self, range: DateRange) -> ColumnSlice<'_> {
        let (lo_ts, hi_ts) = range.ts_bounds();
        let lo = self.cols.ts.partition_point(|&ts| ts < lo_ts);
        let hi = self.cols.ts.partition_point(|&ts| ts <= hi_ts);
        self.cols.slice(lo..hi, &self.tables)
    }

    /// The records on one day.
    pub fn on_day(&self, day: SimDate) -> ColumnSlice<'_> {
        self.in_range(DateRange::single(day))
    }

    /// The intern tables this store is encoded against.
    pub fn tables(&self) -> &Arc<EntityTables> {
        &self.tables
    }

    /// Heap bytes held by the columns (tables excluded — they are shared
    /// across every store of a study and accounted once).
    pub fn bytes(&self) -> usize {
        self.cols.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Asn, Country};

    fn rec(user: u64, day: SimDate, hour: u8, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: day.at(hour, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn range_queries_slice_correctly() {
        let mut s = RequestStore::new();
        // Insert out of order on purpose.
        s.push(rec(1, SimDate::ymd(4, 15), 8, "2001:db8::1"));
        s.push(rec(2, SimDate::ymd(4, 13), 9, "2001:db8::2"));
        s.push(rec(3, SimDate::ymd(4, 19), 23, "2001:db8::3"));
        s.push(rec(4, SimDate::ymd(4, 12), 23, "2001:db8::4"));
        s.push(rec(5, SimDate::ymd(4, 20), 0, "2001:db8::5"));

        assert_eq!(s.len(), 5);
        let week = s.in_range(crate::time::focus_week());
        assert_eq!(week.len(), 3);
        assert!(week.windows(2).all(|w| w[0].ts <= w[1].ts));

        let day = s.on_day(SimDate::ymd(4, 13));
        assert_eq!(day.len(), 1);
        assert_eq!(day[0].user, UserId(2));

        let empty = s.on_day(SimDate::ymd(1, 1));
        assert!(empty.is_empty());
    }

    #[test]
    fn inclusive_bounds_at_midnight() {
        let mut s = RequestStore::new();
        s.push(rec(1, SimDate::ymd(4, 13), 0, "2001:db8::1")); // first second
        s.push(rec(2, SimDate::ymd(4, 19), 23, "2001:db8::2")); // last day
        assert_eq!(s.in_range(crate::time::focus_week()).len(), 2);
    }

    #[test]
    fn extend_from_appends_preserving_order() {
        let a1 = rec(1, SimDate::ymd(4, 13), 10, "2001:db8::1");
        let a2 = rec(2, SimDate::ymd(4, 13), 10, "2001:db8::2"); // equal ts on purpose
        let b1 = rec(3, SimDate::ymd(4, 13), 10, "2001:db8::3");

        // Serial: push a1, a2, b1 into one store.
        let mut serial = RequestStore::new();
        serial.push(a1);
        serial.push(a2);
        serial.push(b1);

        // Sharded: two stores merged in shard order.
        let mut left = RequestStore::new();
        left.push(a1);
        left.push(a2);
        let mut right = RequestStore::new();
        right.push(b1);
        let mut merged = RequestStore::new();
        merged.extend_from(left);
        merged.extend_from(right);

        // The stable sort must leave both in the same tie order.
        assert_eq!(serial.all(), merged.all());
    }

    #[test]
    fn extend_from_into_empty_is_a_move() {
        let mut src = RequestStore::new();
        src.push(rec(1, SimDate::ymd(4, 13), 1, "2001:db8::1"));
        src.ensure_sorted();
        let mut dst = RequestStore::new();
        dst.extend_from(src);
        assert_eq!(dst.len(), 1);
        // Moving a sorted store keeps it sorted (no re-sort needed).
        assert!(dst.sorted);
        dst.extend_from(RequestStore::new());
        assert_eq!(dst.len(), 1);
        assert!(dst.sorted);
    }

    #[test]
    fn extend_from_preserves_sorted_when_disjoint_in_time() {
        let mut left = RequestStore::new();
        left.push(rec(1, SimDate::ymd(4, 13), 1, "2001:db8::1"));
        left.push(rec(2, SimDate::ymd(4, 13), 2, "2001:db8::2"));
        left.ensure_sorted();
        let mut right = RequestStore::new();
        right.push(rec(3, SimDate::ymd(4, 13), 2, "2001:db8::3")); // ties allowed
        right.push(rec(4, SimDate::ymd(4, 13), 5, "2001:db8::4"));
        right.ensure_sorted();

        left.extend_from(right);
        assert!(left.sorted, "disjoint sorted merge must stay sorted");
        assert!(left.all().windows(2).all(|w| w[0].ts <= w[1].ts));

        // Overlapping merge clears the flag (a re-sort is required).
        let mut early = RequestStore::new();
        early.push(rec(5, SimDate::ymd(4, 13), 0, "2001:db8::5"));
        early.ensure_sorted();
        left.extend_from(early);
        assert!(!left.sorted);
        assert_eq!(left.all().first().unwrap().user, UserId(5));
    }

    #[test]
    fn frozen_store_matches_thawed_queries() {
        let mut s = RequestStore::new();
        s.push(rec(1, SimDate::ymd(4, 15), 8, "2001:db8::1"));
        s.push(rec(2, SimDate::ymd(4, 13), 9, "2001:db8::2"));
        s.push(rec(3, SimDate::ymd(4, 19), 23, "2001:db8::3"));
        s.push(rec(4, SimDate::ymd(4, 12), 23, "2001:db8::4"));
        let frozen = s.clone().freeze();
        assert_eq!(frozen.len(), s.len());
        assert_eq!(frozen.all().records().collect::<Vec<_>>(), s.all());
        assert_eq!(
            frozen
                .in_range(crate::time::focus_week())
                .records()
                .collect::<Vec<_>>(),
            s.in_range(crate::time::focus_week())
        );
        assert_eq!(
            frozen
                .on_day(SimDate::ymd(4, 13))
                .records()
                .collect::<Vec<_>>(),
            s.on_day(SimDate::ymd(4, 13))
        );
        assert!(frozen.on_day(SimDate::ymd(1, 1)).is_empty());
        // Columnar cost: 18 bytes/row vs the 40-byte row struct.
        assert_eq!(frozen.bytes(), frozen.len() * 18);
        assert!(!frozen.tables().ips.is_empty());
    }

    #[test]
    fn extend_from_reserves_exactly() {
        let mut shard = RequestStore::new();
        for i in 0..100 {
            shard.push(rec(i, SimDate::ymd(4, 13), 1, "2001:db8::1"));
        }
        assert!(
            shard.capacity() > shard.len(),
            "growth-doubling leaves slack to demonstrate the fix"
        );
        let mut merged = RequestStore::new();
        merged.extend_from(shard);
        assert_eq!(
            merged.capacity(),
            merged.len(),
            "merging into empty shrinks the moved buffer"
        );
        let mut other = RequestStore::new();
        for i in 0..37 {
            other.push(rec(i, SimDate::ymd(4, 14), 1, "2001:db8::2"));
        }
        merged.extend_from(other);
        assert_eq!(merged.len(), 137);
        assert_eq!(
            merged.capacity(),
            merged.len(),
            "append path reserves exactly, stranding no shard slack"
        );
    }

    #[test]
    fn grouping_helpers() {
        let mut s = RequestStore::new();
        s.push(rec(1, SimDate::ymd(4, 13), 1, "2001:db8::1"));
        s.push(rec(1, SimDate::ymd(4, 13), 2, "2001:db8::9"));
        s.push(rec(2, SimDate::ymd(4, 13), 3, "2001:db8::1"));
        let recs = s.all().to_vec();

        let by_user = RequestStore::group_by_user(&recs);
        assert_eq!(by_user.len(), 2);
        assert_eq!(by_user[&UserId(1)].len(), 2);

        let by_ip = RequestStore::group_by_ip(&recs);
        assert_eq!(by_ip.len(), 2);
        assert_eq!(by_ip[&"2001:db8::1".parse::<IpAddr>().unwrap()].len(), 2);

        assert_eq!(
            RequestStore::distinct_users(&recs),
            vec![UserId(1), UserId(2)]
        );
    }

    #[test]
    fn distinct_users_radix_path_matches_comparison_sort() {
        use crate::time::Timestamp;
        use ipv6_study_stats::testgen::TestGen;
        let mut g = TestGen::new(1234);
        // Duplicate-heavy ids across the full u64 range.
        let recs: Vec<RequestRecord> = g.vec_of(2000, |g| RequestRecord {
            ts: Timestamp::from_secs(g.below(100) as u32),
            user: UserId(g.next_u64() >> g.below(50)),
            ip: "2001:db8::1".parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        });
        // The pre-kernel implementation, verbatim.
        let mut old: Vec<UserId> = recs.iter().map(|r| r.user).collect();
        old.sort_unstable();
        old.dedup();
        assert_eq!(RequestStore::distinct_users(&recs), old);
        assert!(RequestStore::distinct_users(&[]).is_empty());
    }
}
