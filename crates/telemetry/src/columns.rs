//! Columnar (struct-of-arrays) request storage over interned ids.
//!
//! The row-oriented [`RequestRecord`] costs
//! 40 bytes per row (a tagged `IpAddr` enum plus padding). The columnar
//! layout stores the same five fields as parallel columns over interned
//! ids — 4-byte timestamp, 4-byte [`IpId`], 4-byte dense user, 4-byte ASN,
//! 2-byte country = **18 bytes per row** — and serves range queries as
//! [`ColumnSlice`]s: borrowed column windows plus the shared
//! [`EntityTables`], from which rows can be rematerialized on demand
//! through the [`RecordView`] cursor.

use std::ops::Range;
use std::sync::Arc;

use crate::ids::{Asn, Country, UserId};
use crate::intern::{EntityTables, IpId};
use crate::record::RequestRecord;
use crate::time::Timestamp;

/// Owned parallel columns of encoded request rows (no entity tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnStore {
    /// Arrival timestamps, in store order.
    pub ts: Vec<Timestamp>,
    /// Interned source-address ids.
    pub ip: Vec<IpId>,
    /// Dense user ids.
    pub user: Vec<u32>,
    /// Announcing ASNs.
    pub asn: Vec<Asn>,
    /// Country geolocations.
    pub country: Vec<Country>,
}

impl ColumnStore {
    /// Encodes a row stream against intern tables built over (a superset
    /// of) the same rows.
    pub fn encode<'a>(
        records: impl Iterator<Item = &'a RequestRecord>,
        tables: &EntityTables,
    ) -> Self {
        let mut cols = Self::default();
        for r in records {
            cols.push_encoded(r, tables);
        }
        cols.shrink_to_fit();
        cols
    }

    /// Appends one encoded row.
    pub fn push_encoded(&mut self, r: &RequestRecord, tables: &EntityTables) {
        self.ts.push(r.ts);
        self.ip.push(tables.ips.id_of(r.ip));
        self.user.push(tables.users.dense_of(r.user));
        self.asn.push(r.asn);
        self.country.push(r.country);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Reserves room for `n` more rows on every column.
    pub fn reserve(&mut self, n: usize) {
        self.ts.reserve(n);
        self.ip.reserve(n);
        self.user.reserve(n);
        self.asn.reserve(n);
        self.country.reserve(n);
    }

    /// Releases over-allocation on every column.
    pub fn shrink_to_fit(&mut self) {
        self.ts.shrink_to_fit();
        self.ip.shrink_to_fit();
        self.user.shrink_to_fit();
        self.asn.shrink_to_fit();
        self.country.shrink_to_fit();
    }

    /// Heap bytes held by the columns (capacity, not just length — this is
    /// what the `sim.store_bytes` gauge reports).
    pub fn bytes(&self) -> usize {
        self.ts.capacity() * std::mem::size_of::<Timestamp>()
            + self.ip.capacity() * std::mem::size_of::<IpId>()
            + self.user.capacity() * std::mem::size_of::<u32>()
            + self.asn.capacity() * std::mem::size_of::<Asn>()
            + self.country.capacity() * std::mem::size_of::<Country>()
    }

    /// Borrows a row window as a [`ColumnSlice`].
    pub fn slice<'a>(
        &'a self,
        range: Range<usize>,
        tables: &'a Arc<EntityTables>,
    ) -> ColumnSlice<'a> {
        ColumnSlice {
            ts: &self.ts[range.clone()],
            ip: &self.ip[range.clone()],
            user: &self.user[range.clone()],
            asn: &self.asn[range.clone()],
            country: &self.country[range],
            tables,
        }
    }
}

/// A borrowed window of encoded rows: five column slices plus the shared
/// intern tables needed to rematerialize them. `Copy`, so passes hand
/// windows around as cheaply as the `&[RequestRecord]` slices they
/// replaced.
#[derive(Clone, Copy)]
pub struct ColumnSlice<'a> {
    ts: &'a [Timestamp],
    ip: &'a [IpId],
    user: &'a [u32],
    asn: &'a [Asn],
    country: &'a [Country],
    tables: &'a Arc<EntityTables>,
}

impl<'a> ColumnSlice<'a> {
    /// An empty slice over the given tables.
    pub fn empty(tables: &'a Arc<EntityTables>) -> Self {
        Self {
            ts: &[],
            ip: &[],
            user: &[],
            asn: &[],
            country: &[],
            tables,
        }
    }

    /// Number of rows in the window.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the window holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The timestamp column.
    pub fn ts(&self) -> &'a [Timestamp] {
        self.ts
    }

    /// The interned address-id column.
    pub fn ip_ids(&self) -> &'a [IpId] {
        self.ip
    }

    /// The dense user-id column.
    pub fn users_dense(&self) -> &'a [u32] {
        self.user
    }

    /// The ASN column.
    pub fn asns(&self) -> &'a [Asn] {
        self.asn
    }

    /// The country column.
    pub fn countries(&self) -> &'a [Country] {
        self.country
    }

    /// The shared intern tables.
    pub fn tables(&self) -> &'a EntityTables {
        self.tables
    }

    /// A clone of the `Arc` holding the intern tables (for owners that
    /// outlive this borrow, e.g. a `DatasetIndex`).
    pub fn tables_arc(&self) -> Arc<EntityTables> {
        Arc::clone(self.tables)
    }

    /// The raw user id at a row.
    #[inline]
    pub fn user_at(&self, i: usize) -> UserId {
        self.tables.users.user(self.user[i])
    }

    /// The source address at a row.
    #[inline]
    pub fn addr_at(&self, i: usize) -> std::net::IpAddr {
        self.tables.ips.addr(self.ip[i])
    }

    /// Whether the row's source address is IPv6.
    #[inline]
    pub fn is_v6_at(&self, i: usize) -> bool {
        self.ip[i].is_v6()
    }

    /// Rematerializes one row.
    #[inline]
    pub fn record(&self, i: usize) -> RequestRecord {
        RequestRecord {
            ts: self.ts[i],
            user: self.user_at(i),
            ip: self.addr_at(i),
            asn: self.asn[i],
            country: self.country[i],
        }
    }

    /// A lazily-rematerializing row cursor over the window.
    pub fn records(&self) -> RecordView<'a> {
        RecordView {
            ts: self.ts.iter(),
            ip: self.ip.iter(),
            user: self.user.iter(),
            asn: self.asn.iter(),
            country: self.country.iter(),
            tables: self.tables,
        }
    }

    /// Copies the mask-selected rows into owned columns sharing this
    /// window's intern tables — the columnar replacement for
    /// `OwnedColumns::encode_with(tables, win.records().filter(..))`:
    /// no row is decoded to a [`RequestRecord`] and re-interned, the
    /// five columns are gathered directly.
    pub fn gather(&self, mask: &crate::kernels::SelectionMask) -> OwnedColumns {
        let mut cols = ColumnStore::default();
        self.select_into(mask, &mut cols);
        OwnedColumns {
            cols,
            tables: self.tables_arc(),
        }
    }

    /// Appends the mask-selected rows onto `out` (encoded against this
    /// window's tables). The mask must cover exactly this window.
    pub fn select_into(&self, mask: &crate::kernels::SelectionMask, out: &mut ColumnStore) {
        assert_eq!(mask.len(), self.len(), "mask covers a different window");
        out.reserve(mask.count());
        mask.for_each(|i| {
            out.ts.push(self.ts[i]);
            out.ip.push(self.ip[i]);
            out.user.push(self.user[i]);
            out.asn.push(self.asn[i]);
            out.country.push(self.country[i]);
        });
    }

    /// Number of rows in the window selected by `mask` — a popcount, no
    /// materialization.
    pub fn filter_count(&self, mask: &crate::kernels::SelectionMask) -> usize {
        assert_eq!(mask.len(), self.len(), "mask covers a different window");
        mask.count()
    }

    /// Re-windows the slice.
    pub fn slice(&self, range: Range<usize>) -> ColumnSlice<'a> {
        ColumnSlice {
            ts: &self.ts[range.clone()],
            ip: &self.ip[range.clone()],
            user: &self.user[range.clone()],
            asn: &self.asn[range.clone()],
            country: &self.country[range],
            tables: self.tables,
        }
    }
}

impl std::fmt::Debug for ColumnSlice<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnSlice")
            .field("len", &self.len())
            .field("first", &(!self.is_empty()).then(|| self.record(0)))
            .finish()
    }
}

/// Row equality by content: two windows are equal when they materialize
/// to the same record sequence (their tables may differ).
impl PartialEq for ColumnSlice<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.records().eq(other.records())
    }
}

/// A double-ended, exact-size cursor yielding rematerialized rows.
///
/// Holds one [`std::slice::Iter`] per column and advances all five in
/// lockstep, so each row costs five pointer bumps — not the five
/// bounds-checked indexes the earlier index-based cursor paid per row
/// (`bench_kernels` reports the difference).
#[derive(Clone)]
pub struct RecordView<'a> {
    ts: std::slice::Iter<'a, Timestamp>,
    ip: std::slice::Iter<'a, IpId>,
    user: std::slice::Iter<'a, u32>,
    asn: std::slice::Iter<'a, Asn>,
    country: std::slice::Iter<'a, Country>,
    tables: &'a EntityTables,
}

impl RecordView<'_> {
    #[inline]
    fn materialize(
        &self,
        ts: Timestamp,
        ip: IpId,
        user: u32,
        asn: Asn,
        c: Country,
    ) -> RequestRecord {
        RequestRecord {
            ts,
            user: self.tables.users.user(user),
            ip: self.tables.ips.addr(ip),
            asn,
            country: c,
        }
    }
}

impl Iterator for RecordView<'_> {
    type Item = RequestRecord;

    #[inline]
    fn next(&mut self) -> Option<RequestRecord> {
        let ts = *self.ts.next()?;
        let ip = *self.ip.next()?;
        let user = *self.user.next()?;
        let asn = *self.asn.next()?;
        let c = *self.country.next()?;
        Some(self.materialize(ts, ip, user, asn, c))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ts.size_hint()
    }
}

impl DoubleEndedIterator for RecordView<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<RequestRecord> {
        let ts = *self.ts.next_back()?;
        let ip = *self.ip.next_back()?;
        let user = *self.user.next_back()?;
        let asn = *self.asn.next_back()?;
        let c = *self.country.next_back()?;
        Some(self.materialize(ts, ip, user, asn, c))
    }
}

impl ExactSizeIterator for RecordView<'_> {}

/// Owned encoded rows plus their intern tables — the columnar analogue of
/// a `Vec<RequestRecord>`, for filtered subsets and unit tests.
#[derive(Debug, Clone)]
pub struct OwnedColumns {
    cols: ColumnStore,
    tables: Arc<EntityTables>,
}

impl OwnedColumns {
    /// Encodes a record slice against freshly-built local tables.
    pub fn from_records(records: &[RequestRecord]) -> Self {
        let tables = Arc::new(EntityTables::from_records(records));
        let cols = ColumnStore::encode(records.iter(), &tables);
        Self { cols, tables }
    }

    /// Encodes a record stream against existing (shared) tables; every
    /// entity in the stream must be interned in them.
    pub fn encode_with(
        tables: Arc<EntityTables>,
        records: impl Iterator<Item = RequestRecord>,
    ) -> Self {
        let mut cols = ColumnStore::default();
        for r in records {
            cols.push_encoded(&r, &tables);
        }
        cols.shrink_to_fit();
        Self { cols, tables }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Borrows the full window.
    pub fn as_slice(&self) -> ColumnSlice<'_> {
        self.cols.slice(0..self.cols.len(), &self.tables)
    }

    /// Heap bytes held by the columns (tables excluded — they're shared).
    pub fn bytes(&self) -> usize {
        self.cols.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Asn, Country};
    use crate::time::SimDate;

    fn rec(user: u64, sec: u32, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: Timestamp::from_secs(SimDate::ymd(4, 13).start().secs() + sec),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn sample() -> Vec<RequestRecord> {
        vec![
            rec(3, 0, "2001:db8:1::a"),
            rec(1, 1, "10.0.0.1"),
            rec(3, 2, "10.0.0.1"),
            rec(2, 3, "2001:db8:1::a"),
        ]
    }

    #[test]
    fn encode_round_trips_every_row() {
        let recs = sample();
        let owned = OwnedColumns::from_records(&recs);
        let slice = owned.as_slice();
        assert_eq!(slice.len(), 4);
        assert!(!slice.is_empty());
        let back: Vec<RequestRecord> = slice.records().collect();
        assert_eq!(back, recs, "materialized rows == input rows");
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(slice.record(i), *r);
            assert_eq!(slice.user_at(i), r.user);
            assert_eq!(slice.addr_at(i), r.ip);
            assert_eq!(slice.is_v6_at(i), r.is_v6());
        }
    }

    #[test]
    fn columns_are_eighteen_bytes_per_row() {
        let owned = OwnedColumns::from_records(&sample());
        assert_eq!(owned.bytes(), 4 * 18, "4+4+4+4+2 bytes per row");
        assert!(std::mem::size_of::<RequestRecord>() > 18);
    }

    #[test]
    fn rewindowing_and_equality() {
        let recs = sample();
        let owned = OwnedColumns::from_records(&recs);
        let slice = owned.as_slice();
        let mid = slice.slice(1..3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.record(0), recs[1]);
        // Content equality across different tables.
        let other = OwnedColumns::from_records(&recs[1..3]);
        assert_eq!(mid, other.as_slice());
        assert_ne!(slice, other.as_slice());
        assert!(format!("{mid:?}").contains("len"));
    }

    #[test]
    fn record_view_is_double_ended_and_exact() {
        let recs = sample();
        let owned = OwnedColumns::from_records(&recs);
        let view = owned.as_slice().records();
        assert_eq!(view.len(), 4);
        let rev: Vec<RequestRecord> = owned.as_slice().records().rev().collect();
        assert_eq!(rev.first(), recs.last());
        let empty = OwnedColumns::from_records(&[]);
        assert_eq!(empty.as_slice().records().next(), None);
    }

    #[test]
    fn gather_matches_filtered_reencode() {
        let recs = sample();
        let tables = Arc::new(EntityTables::from_records(&recs));
        let cols = ColumnStore::encode(recs.iter(), &tables);
        let win = cols.slice(0..recs.len(), &tables);
        // Select the v6 rows via a mask; the old path re-encoded the
        // filtered RecordView stream.
        let mask = crate::kernels::mask_from(win.ip_ids(), |id| id.is_v6());
        let gathered = win.gather(&mask);
        let old =
            OwnedColumns::encode_with(Arc::clone(&tables), win.records().filter(|r| r.is_v6()));
        assert_eq!(gathered.as_slice(), old.as_slice());
        assert_eq!(win.filter_count(&mask), 2);
        assert_eq!(gathered.len(), 2);

        let mut extra = ColumnStore::default();
        win.select_into(&mask, &mut extra);
        win.select_into(&mask, &mut extra);
        assert_eq!(extra.len(), 4, "select_into appends");

        let none = win.gather(&crate::kernels::SelectionMask::none(win.len()));
        assert!(none.is_empty());
    }

    #[test]
    fn encode_with_shared_tables() {
        let recs = sample();
        let tables = Arc::new(EntityTables::from_records(&recs));
        let day = OwnedColumns::encode_with(Arc::clone(&tables), recs[..2].iter().copied());
        assert_eq!(day.len(), 2);
        assert_eq!(day.as_slice().record(1), recs[1]);
        let empty = ColumnSlice::empty(&tables);
        assert!(empty.is_empty());
    }
}
