//! The request-consumer abstraction between simulators and datasets.
//!
//! Emitters (the behavior and abuse simulators) produce a stream of
//! [`RequestRecord`]s; what happens to each record — sampling into the
//! study datasets, wholesale retention in a [`RequestStore`], forking to
//! several consumers — is the caller's business. [`RequestSink`] is that
//! seam: emitters take `&mut dyn RequestSink`, and this module provides
//! the standard implementations plus combinators:
//!
//! - [`StudyDatasets`] — routes each record through the deterministic
//!   samplers (the production path),
//! - [`RequestStore`] — keeps everything (useful for bounded windows like
//!   the pair-week store, and in tests),
//! - [`Tee`] — duplicates the stream to two sinks,
//! - [`FnSink`] — adapts a closure (tests and one-off probes),
//! - [`CountingSink`] — wraps a sink and counts records passing through
//!   (the driver's per-shard throughput metric).

use crate::dataset::StudyDatasets;
use crate::record::RequestRecord;
use crate::store::RequestStore;

/// A consumer of simulated platform requests.
///
/// Object-safe on purpose: emitters take `&mut dyn RequestSink` so the
/// simulation crates compile once regardless of where records end up.
pub trait RequestSink {
    /// Accepts one request record.
    fn accept(&mut self, rec: RequestRecord);
}

impl RequestSink for StudyDatasets {
    fn accept(&mut self, rec: RequestRecord) {
        self.offer(rec);
    }
}

impl RequestSink for RequestStore {
    fn accept(&mut self, rec: RequestRecord) {
        self.push(rec);
    }
}

/// Forwarding through a mutable reference, so `&mut dyn RequestSink` can
/// itself be handed to an emitter.
impl RequestSink for &mut dyn RequestSink {
    fn accept(&mut self, rec: RequestRecord) {
        (**self).accept(rec);
    }
}

/// Duplicates every record to two sinks, in order: first `a`, then `b`.
pub struct Tee<'a> {
    a: &'a mut dyn RequestSink,
    b: &'a mut dyn RequestSink,
}

impl<'a> Tee<'a> {
    /// Creates a tee over two sinks.
    pub fn new(a: &'a mut dyn RequestSink, b: &'a mut dyn RequestSink) -> Self {
        Self { a, b }
    }
}

impl RequestSink for Tee<'_> {
    fn accept(&mut self, rec: RequestRecord) {
        self.a.accept(rec);
        self.b.accept(rec);
    }
}

/// Adapts a closure into a sink.
///
/// A blanket `impl<F: FnMut(..)> RequestSink for F` would collide with the
/// concrete impls above under coherence rules, so closures are wrapped
/// explicitly: `&mut FnSink(|rec| ...)`.
pub struct FnSink<F: FnMut(RequestRecord)>(pub F);

impl<F: FnMut(RequestRecord)> RequestSink for FnSink<F> {
    fn accept(&mut self, rec: RequestRecord) {
        (self.0)(rec);
    }
}

/// Wraps a sink and counts the records passing through it.
pub struct CountingSink<'a> {
    inner: &'a mut dyn RequestSink,
    count: u64,
}

impl<'a> CountingSink<'a> {
    /// Creates a counting wrapper around `inner`.
    pub fn new(inner: &'a mut dyn RequestSink) -> Self {
        Self { inner, count: 0 }
    }

    /// Records seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl RequestSink for CountingSink<'_> {
    fn accept(&mut self, rec: RequestRecord) {
        self.count += 1;
        self.inner.accept(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Asn, Country, UserId};
    use crate::sampler::Samplers;
    use crate::time::SimDate;

    fn rec(user: u64, sec: u32) -> RequestRecord {
        RequestRecord {
            ts: crate::time::Timestamp::from_secs(SimDate::ymd(4, 13).start().secs() + sec),
            user: UserId(user),
            ip: "2001:db8::1".parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn store_sink_keeps_everything() {
        let mut store = RequestStore::new();
        let sink: &mut dyn RequestSink = &mut store;
        sink.accept(rec(1, 0));
        sink.accept(rec(2, 1));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn dataset_sink_routes_through_offer() {
        let s = Samplers {
            request_rate: 1.0,
            user_rate: 1.0,
            ip_rate: 1.0,
            prefix_rate: 0.0,
        };
        let mut d = StudyDatasets::with_prefix_lengths(s, &[]);
        let sink: &mut dyn RequestSink = &mut d;
        sink.accept(rec(7, 0));
        assert_eq!(d.offered, 1);
        assert_eq!(d.request_sample.len(), 1);
    }

    #[test]
    fn tee_duplicates_in_order() {
        let mut a = RequestStore::new();
        let mut b = RequestStore::new();
        let mut tee = Tee::new(&mut a, &mut b);
        tee.accept(rec(1, 0));
        tee.accept(rec(2, 1));
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fn_sink_adapts_closures() {
        let mut seen = Vec::new();
        let mut sink = FnSink(|r: RequestRecord| seen.push(r.user));
        sink.accept(rec(3, 0));
        sink.accept(rec(4, 1));
        assert_eq!(seen, vec![UserId(3), UserId(4)]);
    }

    #[test]
    fn counting_sink_counts_and_forwards() {
        let mut store = RequestStore::new();
        let mut counter = CountingSink::new(&mut store);
        for i in 0..5 {
            counter.accept(rec(i, i as u32));
        }
        assert_eq!(counter.count(), 5);
        assert_eq!(store.len(), 5);
    }
}
