//! The request-consumer abstraction between simulators and datasets.
//!
//! Emitters (the behavior and abuse simulators) produce a stream of
//! [`RequestRecord`]s; what happens to each record — sampling into the
//! study datasets, wholesale retention in a [`RequestStore`], streaming
//! into bounded spill segments, forking to several consumers — is the
//! caller's business. [`RequestSink`] is that seam: emitters take
//! `&mut dyn RequestSink`, and this module provides the standard
//! implementations plus combinators:
//!
//! - [`ShardSink`] — the production path: routes each record through the
//!   deterministic §3.1 samplers *during* the sim phase, retaining each
//!   dataset family either in memory or as sorted spill segments
//!   ([`SinkStorage`]),
//! - [`StudyDatasets`] — routes through the samplers into in-memory
//!   stores only (tests and ad-hoc pipelines),
//! - [`RequestStore`] — keeps everything (useful for bounded windows like
//!   the pair-week store, and in tests),
//! - [`Tee`] — duplicates the stream to two sinks,
//! - [`FnSink`] — adapts a closure (tests and one-off probes),
//! - [`CountingSink`] — wraps a sink and counts records passing through.
//!
//! # Lifecycle
//!
//! The trait is **sealed** — the record lifecycle below is a contract
//! between the driver and this crate's sinks, not an extension point
//! (adapt external consumers through [`FnSink`]):
//!
//! 1. [`RequestSink::push`] for every record, in emission order;
//! 2. [`RequestSink::flush_segment`] at stream-defined boundaries (the
//!    driver calls it once per simulated day) — sinks may publish
//!    progress/memory telemetry; spill-backed sinks need no forcing here
//!    because segments auto-flush at `segment_rows`;
//! 3. [`RequestSink::finish`] exactly once at end of stream — spill
//!    staging buffers drain to disk as the final (partial) run.
//!
//! Combinators forward `flush_segment`/`finish` to their inner sinks;
//! for simple sinks both are no-ops.
//!
//! # Storage faults
//!
//! `push` is deliberately infallible — emitters are pure simulation code
//! and never handle I/O. A spill-backed [`ShardSink`] instead **latches**
//! the first typed [`SpillError`] its writers raise: subsequent records
//! are counted but no longer routed, [`ShardSink::io_error`] exposes the
//! latched error (the driver polls it at day boundaries to fail fast),
//! and [`ShardSink::into_payload`] refuses to produce a payload, so a
//! faulted attempt can never feed partial data into the merge.

use std::sync::atomic::AtomicU64;

use ipv6_study_netaddr::Ipv6Prefix;

use crate::dataset::StudyDatasets;
use crate::record::RequestRecord;
use crate::sampler::Samplers;
use crate::spill::{MemGauge, RunManifest, SegmentWriter, SpillError, SpillSession};
use crate::store::RequestStore;

mod sealed {
    //! Seals [`super::RequestSink`]: only this crate's sinks implement it.
    pub trait Sealed {}
}

/// A consumer of simulated platform requests.
///
/// Object-safe on purpose: emitters take `&mut dyn RequestSink` so the
/// simulation crates compile once regardless of where records end up.
/// Sealed: the `push`/`flush_segment`/`finish` lifecycle is a closed
/// contract (see the module docs); external consumers adapt via
/// [`FnSink`].
pub trait RequestSink: sealed::Sealed {
    /// Accepts one request record.
    fn push(&mut self, rec: RequestRecord);

    /// Marks a stream boundary (the driver calls this once per simulated
    /// day). Sinks may publish telemetry or compact buffers; the default
    /// does nothing.
    fn flush_segment(&mut self) {}

    /// Marks end of stream: buffered state must become durable (spill
    /// staging drains to disk). Called exactly once; the default does
    /// nothing.
    fn finish(&mut self) {}
}

impl sealed::Sealed for StudyDatasets {}
impl RequestSink for StudyDatasets {
    fn push(&mut self, rec: RequestRecord) {
        self.offer(rec);
    }
}

impl sealed::Sealed for RequestStore {}
impl RequestSink for RequestStore {
    fn push(&mut self, rec: RequestRecord) {
        RequestStore::push(self, rec);
    }
}

impl sealed::Sealed for &mut dyn RequestSink {}
/// Forwarding through a mutable reference, so `&mut dyn RequestSink` can
/// itself be handed to an emitter.
impl RequestSink for &mut dyn RequestSink {
    fn push(&mut self, rec: RequestRecord) {
        (**self).push(rec);
    }

    fn flush_segment(&mut self) {
        (**self).flush_segment();
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

/// Duplicates every record to two sinks, in order: first `a`, then `b`.
pub struct Tee<'a> {
    a: &'a mut dyn RequestSink,
    b: &'a mut dyn RequestSink,
}

impl<'a> Tee<'a> {
    /// Creates a tee over two sinks.
    pub fn new(a: &'a mut dyn RequestSink, b: &'a mut dyn RequestSink) -> Self {
        Self { a, b }
    }
}

impl sealed::Sealed for Tee<'_> {}
impl RequestSink for Tee<'_> {
    fn push(&mut self, rec: RequestRecord) {
        self.a.push(rec);
        self.b.push(rec);
    }

    fn flush_segment(&mut self) {
        self.a.flush_segment();
        self.b.flush_segment();
    }

    fn finish(&mut self) {
        self.a.finish();
        self.b.finish();
    }
}

/// Adapts a closure into a sink.
///
/// A blanket `impl<F: FnMut(..)> RequestSink for F` would collide with the
/// concrete impls above under coherence rules, so closures are wrapped
/// explicitly: `&mut FnSink(|rec| ...)`. This is also the escape hatch
/// through the sealed trait for external consumers.
pub struct FnSink<F: FnMut(RequestRecord)>(pub F);

impl<F: FnMut(RequestRecord)> sealed::Sealed for FnSink<F> {}
impl<F: FnMut(RequestRecord)> RequestSink for FnSink<F> {
    fn push(&mut self, rec: RequestRecord) {
        (self.0)(rec);
    }
}

/// Wraps a sink and counts the records passing through it.
pub struct CountingSink<'a> {
    inner: &'a mut dyn RequestSink,
    count: u64,
}

impl<'a> CountingSink<'a> {
    /// Creates a counting wrapper around `inner`.
    pub fn new(inner: &'a mut dyn RequestSink) -> Self {
        Self { inner, count: 0 }
    }

    /// Records seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl sealed::Sealed for CountingSink<'_> {}
impl RequestSink for CountingSink<'_> {
    fn push(&mut self, rec: RequestRecord) {
        self.count += 1;
        self.inner.push(rec);
    }

    fn flush_segment(&mut self) {
        self.inner.flush_segment();
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

/// Where a [`ShardSink`] keeps each retained dataset family.
pub enum SinkStorage<'a> {
    /// Rows accumulate in per-family [`RequestStore`]s (the original
    /// pipeline).
    Memory,
    /// Rows stream into per-family [`SegmentWriter`]s under a shared
    /// [`SpillSession`]; at most `segment_rows` rows per family are ever
    /// staged in memory.
    Spill {
        /// The run's spill session (owns the directory).
        session: &'a SpillSession,
        /// Shard index (names the spill files).
        shard: usize,
        /// Attempt number (names the spill files, so a failed attempt's
        /// files can be removed without touching a retry's).
        attempt: u32,
        /// Rows staged per family before a sorted run is appended.
        segment_rows: usize,
    },
}

/// One dataset family's backing storage inside a [`ShardSink`].
enum FamilyStore {
    Memory(RequestStore),
    Spill(SegmentWriter),
}

impl FamilyStore {
    fn new(storage: &SinkStorage<'_>, family: &str) -> Self {
        match *storage {
            SinkStorage::Memory => FamilyStore::Memory(RequestStore::new()),
            SinkStorage::Spill {
                session,
                shard,
                attempt,
                segment_rows,
            } => FamilyStore::Spill(session.writer(shard, attempt, family, segment_rows)),
        }
    }

    fn push(&mut self, rec: RequestRecord) -> Result<(), SpillError> {
        match self {
            FamilyStore::Memory(s) => {
                s.push(rec);
                Ok(())
            }
            FamilyStore::Spill(w) => w.push(rec),
        }
    }

    /// Mutable row bytes this family currently holds in memory.
    fn live_bytes(&self) -> u64 {
        match self {
            FamilyStore::Memory(s) => (s.len() * std::mem::size_of::<RequestRecord>()) as u64,
            FamilyStore::Spill(w) => w.staged_bytes(),
        }
    }

    fn finish(&mut self) -> Result<(), SpillError> {
        if let FamilyStore::Spill(w) = self {
            w.finish()?;
        }
        Ok(())
    }

    fn into_payload(self) -> FamilyPayload {
        match self {
            FamilyStore::Memory(s) => FamilyPayload::Rows(s),
            FamilyStore::Spill(w) => FamilyPayload::Runs(w.into_manifest()),
        }
    }
}

/// One dataset family's finished output: in-memory rows or a spilled run
/// manifest, depending on the run's [`SinkStorage`].
pub enum FamilyPayload {
    /// The family's records, resident in memory.
    Rows(RequestStore),
    /// The family's records, spilled as sorted runs on disk.
    Runs(RunManifest),
}

impl FamilyPayload {
    /// Records in this family.
    pub fn rows(&self) -> u64 {
        match self {
            FamilyPayload::Rows(s) => s.len() as u64,
            FamilyPayload::Runs(m) => m.rows(),
        }
    }
}

/// Everything a finished [`ShardSink`] produced, handed back to the
/// driver for the merge phase.
pub struct ShardPayload {
    /// Record random sample (§3.1).
    pub request: FamilyPayload,
    /// User random sample (§3.1).
    pub user: FamilyPayload,
    /// IP random sample (§3.1).
    pub ip: FamilyPayload,
    /// Per-length IPv6 prefix random samples, ascending by length.
    pub prefixes: Vec<(u8, FamilyPayload)>,
    /// Full-fidelity abuse stream (abuse shards only).
    pub abuse: Option<FamilyPayload>,
    /// Full-fidelity pair-window stream (last three study days).
    pub pair: FamilyPayload,
    /// Records offered to the samplers (excludes nothing; the abuse
    /// stream sees the same records before sampling).
    pub offered: u64,
    /// Total records pushed through the sink.
    pub records: u64,
}

/// The production per-shard sink: applies the §3.1 [`Samplers`] to every
/// record *during* the sim phase and retains each dataset family in the
/// configured [`SinkStorage`].
///
/// One sink lives for one shard attempt. The routing order per record is
/// fixed (it defines emission order within every family, which the golden
/// digests pin): full-fidelity abuse stream (abuse shards), then the
/// request/user/ip samples, then each prefix sample ascending by length,
/// then the pair-window stream when [`ShardSink::set_pair_routing`] is on.
pub struct ShardSink<'a> {
    samplers: Samplers,
    request: FamilyStore,
    user: FamilyStore,
    ip: FamilyStore,
    prefixes: Vec<(u8, FamilyStore)>,
    abuse: Option<FamilyStore>,
    pair: FamilyStore,
    pair_routing: bool,
    offered: u64,
    records: u64,
    gauge: Option<(&'a MemGauge, &'a AtomicU64)>,
    /// The first storage error a spill writer raised; once set, records
    /// are counted but no longer routed (see "Storage faults" above).
    error: Option<SpillError>,
}

impl<'a> ShardSink<'a> {
    /// Creates a sink for one shard attempt.
    ///
    /// `prefix_lengths` need not be sorted or unique; the sink routes in
    /// ascending-length order. `collect_abuse` turns on the full-fidelity
    /// abuse stream (abuse shards). `gauge` is the run-wide memory
    /// high-water gauge plus this attempt's published counter; pass
    /// `None` to skip memory telemetry.
    pub fn new(
        samplers: Samplers,
        prefix_lengths: &[u8],
        collect_abuse: bool,
        storage: SinkStorage<'a>,
        gauge: Option<(&'a MemGauge, &'a AtomicU64)>,
    ) -> Self {
        let mut lengths: Vec<u8> = prefix_lengths.to_vec();
        lengths.sort_unstable();
        lengths.dedup();
        let prefixes = lengths
            .into_iter()
            .map(|len| (len, FamilyStore::new(&storage, &format!("p{len}"))))
            .collect();
        Self {
            samplers,
            request: FamilyStore::new(&storage, "request"),
            user: FamilyStore::new(&storage, "user"),
            ip: FamilyStore::new(&storage, "ip"),
            prefixes,
            abuse: collect_abuse.then(|| FamilyStore::new(&storage, "abuse")),
            pair: FamilyStore::new(&storage, "pair"),
            pair_routing: false,
            offered: 0,
            records: 0,
            gauge,
            error: None,
        }
    }

    /// Toggles the full-fidelity pair-window stream (the driver enables
    /// it for the last three study days).
    pub fn set_pair_routing(&mut self, on: bool) {
        self.pair_routing = on;
    }

    /// Total records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The latched storage error, if a spill writer has failed. The
    /// driver polls this at day boundaries so a faulted attempt stops
    /// simulating instead of pushing into a dead sink.
    pub fn io_error(&self) -> Option<&SpillError> {
        self.error.as_ref()
    }

    /// Routes one record through the samplers into the family stores,
    /// surfacing the first storage error.
    fn route(&mut self, rec: RequestRecord) -> Result<(), SpillError> {
        if let Some(abuse) = &mut self.abuse {
            abuse.push(rec)?;
        }
        self.offered += 1;
        if self.samplers.request_sampled(&rec) {
            self.request.push(rec)?;
        }
        if self.samplers.user_sampled(rec.user) {
            self.user.push(rec)?;
        }
        if self.samplers.ip_sampled(&rec) {
            self.ip.push(rec)?;
        }
        if let Some(addr) = rec.ipv6() {
            for (len, store) in &mut self.prefixes {
                if self
                    .samplers
                    .prefix_sampled(Ipv6Prefix::containing(addr, *len))
                {
                    store.push(rec)?;
                }
            }
        }
        if self.pair_routing {
            self.pair.push(rec)?;
        }
        Ok(())
    }

    /// Finishes every family store, surfacing the first storage error.
    fn finish_families(&mut self) -> Result<(), SpillError> {
        self.request.finish()?;
        self.user.finish()?;
        self.ip.finish()?;
        for (_, store) in &mut self.prefixes {
            store.finish()?;
        }
        if let Some(abuse) = &mut self.abuse {
            abuse.finish()?;
        }
        self.pair.finish()
    }

    /// Mutable row bytes currently held in memory across all families.
    fn live_bytes(&self) -> u64 {
        let mut bytes = self.request.live_bytes()
            + self.user.live_bytes()
            + self.ip.live_bytes()
            + self.pair.live_bytes();
        for (_, store) in &self.prefixes {
            bytes += store.live_bytes();
        }
        if let Some(abuse) = &self.abuse {
            bytes += abuse.live_bytes();
        }
        bytes
    }

    fn publish_gauge(&self) {
        if let Some((gauge, published)) = self.gauge {
            gauge.publish(published, self.live_bytes());
        }
    }

    /// Consumes the sink into its payload. [`RequestSink::finish`] must
    /// have been called first (spill writers assert it). A sink that
    /// latched a storage error refuses to produce a payload — the typed
    /// error surfaces instead, so partial data never reaches the merge.
    pub fn into_payload(self) -> Result<ShardPayload, SpillError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(ShardPayload {
            request: self.request.into_payload(),
            user: self.user.into_payload(),
            ip: self.ip.into_payload(),
            prefixes: self
                .prefixes
                .into_iter()
                .map(|(len, store)| (len, store.into_payload()))
                .collect(),
            abuse: self.abuse.map(FamilyStore::into_payload),
            pair: self.pair.into_payload(),
            offered: self.offered,
            records: self.records,
        })
    }
}

impl sealed::Sealed for ShardSink<'_> {}
impl RequestSink for ShardSink<'_> {
    fn push(&mut self, rec: RequestRecord) {
        self.records += 1;
        if self.error.is_some() {
            return; // latched: count, don't route
        }
        if let Err(e) = self.route(rec) {
            self.error = Some(e);
        }
    }

    fn flush_segment(&mut self) {
        self.publish_gauge();
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.finish_families() {
                self.error = Some(e);
            }
        }
        self.publish_gauge();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Asn, Country, UserId};
    use crate::sampler::Samplers;
    use crate::time::SimDate;

    fn rec(user: u64, sec: u32) -> RequestRecord {
        RequestRecord {
            ts: crate::time::Timestamp::from_secs(SimDate::ymd(4, 13).start().secs() + sec),
            user: UserId(user),
            ip: "2001:db8::1".parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    fn keep_all() -> Samplers {
        Samplers {
            request_rate: 1.0,
            user_rate: 1.0,
            ip_rate: 1.0,
            prefix_rate: 0.0,
        }
    }

    #[test]
    fn store_sink_keeps_everything() {
        let mut store = RequestStore::new();
        let sink: &mut dyn RequestSink = &mut store;
        sink.push(rec(1, 0));
        sink.push(rec(2, 1));
        sink.flush_segment(); // default no-op
        sink.finish();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn dataset_sink_routes_through_offer() {
        let mut d = StudyDatasets::with_prefix_lengths(keep_all(), &[]);
        let sink: &mut dyn RequestSink = &mut d;
        sink.push(rec(7, 0));
        assert_eq!(d.offered, 1);
        assert_eq!(d.request_sample.len(), 1);
    }

    #[test]
    fn tee_duplicates_in_order() {
        let mut a = RequestStore::new();
        let mut b = RequestStore::new();
        let mut tee = Tee::new(&mut a, &mut b);
        tee.push(rec(1, 0));
        tee.push(rec(2, 1));
        tee.finish();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fn_sink_adapts_closures() {
        let mut seen = Vec::new();
        let mut sink = FnSink(|r: RequestRecord| seen.push(r.user));
        sink.push(rec(3, 0));
        sink.push(rec(4, 1));
        assert_eq!(seen, vec![UserId(3), UserId(4)]);
    }

    #[test]
    fn counting_sink_counts_and_forwards() {
        let mut store = RequestStore::new();
        let mut counter = CountingSink::new(&mut store);
        for i in 0..5 {
            counter.push(rec(i, i as u32));
        }
        assert_eq!(counter.count(), 5);
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn shard_sink_routes_like_study_datasets() {
        // Reference path: StudyDatasets + external abuse/pair stores.
        let samplers = Samplers::scaled_for(1_000);
        let records: Vec<RequestRecord> = (0..2_000).map(|i| rec(i % 97, i as u32)).collect();

        let mut reference = StudyDatasets::with_prefix_lengths(samplers.clone(), &[48, 64]);
        let mut ref_pair = RequestStore::new();
        for (i, r) in records.iter().enumerate() {
            reference.offer(*r);
            if i >= 1_000 {
                ref_pair.push(*r);
            }
        }

        let mut sink = ShardSink::new(samplers, &[64, 48, 48], false, SinkStorage::Memory, None);
        for (i, r) in records.iter().enumerate() {
            if i == 1_000 {
                sink.set_pair_routing(true);
            }
            sink.push(*r);
        }
        sink.finish();
        let payload = sink.into_payload().unwrap();

        assert_eq!(payload.offered, reference.offered);
        assert_eq!(payload.records, 2_000);
        assert!(payload.abuse.is_none());
        let rows = |p: &FamilyPayload| match p {
            FamilyPayload::Rows(s) => s.len(),
            FamilyPayload::Runs(_) => unreachable!("memory storage"),
        };
        assert_eq!(rows(&payload.request), reference.request_sample.len());
        assert_eq!(rows(&payload.user), reference.user_sample.len());
        assert_eq!(rows(&payload.ip), reference.ip_sample.len());
        assert_eq!(rows(&payload.pair), ref_pair.len());
        // Duplicated/unsorted prefix lengths collapse to ascending order.
        assert_eq!(
            payload.prefixes.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![48, 64]
        );
        for (len, p) in &payload.prefixes {
            assert_eq!(rows(p), reference.prefix_sample(*len).len(), "/{len}");
        }
    }

    #[test]
    fn shard_sink_publishes_memory_telemetry() {
        let gauge = MemGauge::new();
        let published = AtomicU64::new(0);
        let mut sink = ShardSink::new(
            keep_all(),
            &[],
            true,
            SinkStorage::Memory,
            Some((&gauge, &published)),
        );
        for i in 0..10 {
            sink.push(rec(i, i as u32));
        }
        sink.flush_segment();
        // 10 records × (abuse + request + user + ip) families × 40 bytes.
        let expected = 10 * 4 * std::mem::size_of::<RequestRecord>() as u64;
        assert_eq!(gauge.current(), expected);
        sink.finish();
        assert_eq!(gauge.peak(), expected);
    }

    #[test]
    fn spill_backed_shard_sink_matches_memory_routing() {
        let session = crate::spill::SpillSession::create(None).unwrap();
        let samplers = Samplers::scaled_for(1_000);
        let records: Vec<RequestRecord> = (0..3_000).map(|i| rec(i % 61, i as u32)).collect();

        let run = |storage: SinkStorage<'_>| {
            let mut sink = ShardSink::new(samplers.clone(), &[64], true, storage, None);
            for r in &records {
                sink.push(*r);
            }
            sink.finish();
            sink.into_payload().unwrap()
        };
        let memory = run(SinkStorage::Memory);
        let spilled = run(SinkStorage::Spill {
            session: &session,
            shard: 0,
            attempt: 0,
            segment_rows: 128,
        });

        assert_eq!(memory.offered, spilled.offered);
        for (m, s, what) in [
            (&memory.request, &spilled.request, "request"),
            (&memory.user, &spilled.user, "user"),
            (&memory.ip, &spilled.ip, "ip"),
            (&memory.pair, &spilled.pair, "pair"),
            (
                memory.abuse.as_ref().unwrap(),
                spilled.abuse.as_ref().unwrap(),
                "abuse",
            ),
            (&memory.prefixes[0].1, &spilled.prefixes[0].1, "p64"),
        ] {
            assert_eq!(m.rows(), s.rows(), "{what} family row count");
        }
    }
}
