//! One-pass routing of a simulated request stream into the study datasets.
//!
//! The simulation driver produces every request the platform would see; the
//! paper (and we) can only afford to *keep* deterministic samples. A
//! [`StudyDatasets`] accepts the full stream through [`StudyDatasets::offer`]
//! and retains each record in whichever datasets sample it:
//!
//! - the **request** random sample (Fig 1's request series),
//! - the **user** random sample (all requests of sampled users — the
//!   workhorse dataset for §4–§5 and the outlier extrapolations),
//! - the **IP** random sample (all requests from sampled addresses, §6.1),
//! - the **IPv6 prefix** random samples at the study's fifteen lengths
//!   (§6.2), each an independent per-length sample.
//!
//! Prefix-sample records are stored once per sampled length; lengths are
//! configurable to bound memory when an analysis needs only a few.

use std::collections::HashMap;

use ipv6_study_netaddr::{Ipv6Prefix, STUDY_PREFIX_LENGTHS};

use crate::record::RequestRecord;
use crate::sampler::Samplers;
use crate::store::{FrozenStore, RequestStore};

/// The four dataset families of §3.1, filled by deterministic sampling.
#[derive(Debug)]
pub struct StudyDatasets {
    /// Sampler configuration used to route records.
    pub samplers: Samplers,
    /// Random sample of all requests.
    pub request_sample: RequestStore,
    /// All requests from a random sample of users.
    pub user_sample: RequestStore,
    /// All requests from a random sample of addresses.
    pub ip_sample: RequestStore,
    /// All requests from random samples of IPv6 prefixes, per length.
    pub prefix_samples: HashMap<u8, RequestStore>,
    /// Total records offered (the "platform volume" before sampling).
    pub offered: u64,
}

impl StudyDatasets {
    /// Creates dataset stores sampling at the given rates, collecting
    /// prefix samples for every study length.
    pub fn new(samplers: Samplers) -> Self {
        Self::with_prefix_lengths(samplers, &STUDY_PREFIX_LENGTHS)
    }

    /// Creates dataset stores collecting prefix samples only for the given
    /// lengths (pass `&[]` to skip prefix sampling entirely).
    pub fn with_prefix_lengths(samplers: Samplers, lengths: &[u8]) -> Self {
        Self {
            samplers,
            request_sample: RequestStore::new(),
            user_sample: RequestStore::new(),
            ip_sample: RequestStore::new(),
            prefix_samples: lengths.iter().map(|&l| (l, RequestStore::new())).collect(),
            offered: 0,
        }
    }

    /// Offers one platform request; it is retained in every dataset whose
    /// sampler selects it.
    pub fn offer(&mut self, rec: RequestRecord) {
        self.offered += 1;
        if self.samplers.request_sampled(&rec) {
            self.request_sample.push(rec);
        }
        if self.samplers.user_sampled(rec.user) {
            self.user_sample.push(rec);
        }
        if self.samplers.ip_sampled(&rec) {
            self.ip_sample.push(rec);
        }
        if let Some(addr) = rec.ipv6() {
            for (&len, store) in self.prefix_samples.iter_mut() {
                let p = Ipv6Prefix::containing(addr, len);
                if self.samplers.prefix_sampled(p) {
                    store.push(rec);
                }
            }
        }
    }

    /// Absorbs another dataset collection produced under the *same* sampler
    /// configuration and prefix-length set — the merge half of the sharded
    /// simulation driver. Each store's records are appended after `self`'s
    /// in `other`'s internal order, so merging shard outputs in shard-index
    /// order reproduces the serial emission order exactly (the stores'
    /// stable timestamp sort preserves that tie order).
    ///
    /// # Panics
    /// Panics when the sampler configurations differ or the prefix-length
    /// sets differ: such datasets were sampled from different populations
    /// and merging them would be statistically meaningless.
    pub fn merge(&mut self, other: StudyDatasets) {
        assert!(
            self.samplers.same_config(&other.samplers),
            "cannot merge datasets sampled under different configurations"
        );
        assert_eq!(
            {
                let mut k: Vec<u8> = self.prefix_samples.keys().copied().collect();
                k.sort_unstable();
                k
            },
            {
                let mut k: Vec<u8> = other.prefix_samples.keys().copied().collect();
                k.sort_unstable();
                k
            },
            "cannot merge datasets with different prefix-length sets"
        );
        self.request_sample.extend_from(other.request_sample);
        self.user_sample.extend_from(other.user_sample);
        self.ip_sample.extend_from(other.ip_sample);
        for (len, store) in other.prefix_samples {
            self.prefix_samples
                .get_mut(&len)
                .expect("key sets verified equal above")
                .extend_from(store);
        }
        self.offered += other.offered;
    }

    /// Sorts every retained store by timestamp now, instead of lazily on
    /// first query — lets the simulation driver account the sort cost as
    /// its own measured phase.
    pub fn ensure_sorted(&mut self) {
        self.request_sample.ensure_sorted();
        self.user_sample.ensure_sorted();
        self.ip_sample.ensure_sorted();
        for store in self.prefix_samples.values_mut() {
            store.ensure_sorted();
        }
    }

    /// The prefix sample for a given length.
    ///
    /// # Panics
    /// Panics when that length was not collected.
    pub fn prefix_sample(&mut self, len: u8) -> &mut RequestStore {
        self.prefix_samples
            .get_mut(&len)
            .unwrap_or_else(|| panic!("prefix length /{len} was not collected"))
    }

    /// Total records retained across all datasets (diagnostic).
    pub fn retained(&self) -> u64 {
        let base = self.request_sample.len() + self.user_sample.len() + self.ip_sample.len();
        let prefixes: usize = self.prefix_samples.values().map(|s| s.len()).sum();
        (base + prefixes) as u64
    }

    /// Iterates every retained record across all stores in arbitrary
    /// order — the input for building shared intern tables before freezing.
    pub fn iter_unordered(&self) -> impl Iterator<Item = &RequestRecord> + Clone {
        self.request_sample
            .iter_unordered()
            .chain(self.user_sample.iter_unordered())
            .chain(self.ip_sample.iter_unordered())
            .chain(
                self.prefix_samples
                    .values()
                    .flat_map(|s| s.iter_unordered()),
            )
    }

    /// Consumes the datasets into an immutable columnar [`FrozenDatasets`]
    /// whose stores serve `&self` range queries (see [`FrozenStore`]),
    /// encoded against intern tables built over these datasets alone. The
    /// driver uses [`StudyDatasets::freeze_with`] so the tables also cover
    /// the abuse and pair stores.
    pub fn freeze(self) -> FrozenDatasets {
        let tables = std::sync::Arc::new(crate::intern::EntityTables::build(self.iter_unordered()));
        self.freeze_with(tables)
    }

    /// Consumes the datasets into a columnar [`FrozenDatasets`] encoded
    /// against shared intern tables. Every store is sorted here, so the
    /// caller can account the cost as one phase.
    pub fn freeze_with(
        self,
        tables: std::sync::Arc<crate::intern::EntityTables>,
    ) -> FrozenDatasets {
        FrozenDatasets {
            samplers: self.samplers,
            request_sample: self.request_sample.freeze_with(tables.clone()),
            user_sample: self.user_sample.freeze_with(tables.clone()),
            ip_sample: self.ip_sample.freeze_with(tables.clone()),
            prefix_samples: self
                .prefix_samples
                .into_iter()
                .map(|(len, store)| (len, store.freeze_with(tables.clone())))
                .collect(),
            offered: self.offered,
        }
    }
}

/// The frozen counterpart of [`StudyDatasets`]: same dataset families, but
/// every store is an immutable, pre-sorted [`FrozenStore`] shareable across
/// analysis threads.
#[derive(Debug)]
pub struct FrozenDatasets {
    /// Sampler configuration the datasets were routed with.
    pub samplers: Samplers,
    /// Random sample of all requests.
    pub request_sample: FrozenStore,
    /// All requests from a random sample of users.
    pub user_sample: FrozenStore,
    /// All requests from a random sample of addresses.
    pub ip_sample: FrozenStore,
    /// All requests from random samples of IPv6 prefixes, per length.
    pub prefix_samples: HashMap<u8, FrozenStore>,
    /// Total records offered (the "platform volume" before sampling).
    pub offered: u64,
}

impl FrozenDatasets {
    /// The prefix sample for a given length.
    ///
    /// # Panics
    /// Panics when that length was not collected.
    pub fn prefix_sample(&self, len: u8) -> &FrozenStore {
        self.prefix_samples
            .get(&len)
            .unwrap_or_else(|| panic!("prefix length /{len} was not collected"))
    }

    /// Total records retained across all datasets (diagnostic).
    pub fn retained(&self) -> u64 {
        let base = self.request_sample.len() + self.user_sample.len() + self.ip_sample.len();
        let prefixes: usize = self.prefix_samples.values().map(|s| s.len()).sum();
        (base + prefixes) as u64
    }

    /// Heap bytes held by all stores' columns (intern tables excluded —
    /// they are shared and accounted once by the caller).
    pub fn bytes(&self) -> usize {
        self.request_sample.bytes()
            + self.user_sample.bytes()
            + self.ip_sample.bytes()
            + self
                .prefix_samples
                .values()
                .map(|s| s.bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Asn, Country, UserId};
    use crate::time::SimDate;
    use std::net::IpAddr;

    fn rec(user: u64, ip: &str, sec: u32) -> RequestRecord {
        RequestRecord {
            ts: crate::time::Timestamp::from_secs(SimDate::ymd(4, 13).start().secs() + sec),
            user: UserId(user),
            ip: ip.parse::<IpAddr>().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn full_rate_retains_everything() {
        let s = Samplers {
            request_rate: 1.0,
            user_rate: 1.0,
            ip_rate: 1.0,
            prefix_rate: 1.0,
        };
        let mut d = StudyDatasets::with_prefix_lengths(s, &[64, 48]);
        d.offer(rec(1, "2001:db8::1", 0));
        d.offer(rec(2, "192.0.2.1", 1));
        assert_eq!(d.offered, 2);
        assert_eq!(d.request_sample.len(), 2);
        assert_eq!(d.user_sample.len(), 2);
        assert_eq!(d.ip_sample.len(), 2);
        // Only the IPv6 record lands in prefix samples.
        assert_eq!(d.prefix_sample(64).len(), 1);
        assert_eq!(d.prefix_sample(48).len(), 1);
    }

    #[test]
    fn user_sample_keeps_all_requests_of_sampled_users() {
        let s = Samplers {
            request_rate: 0.0001,
            user_rate: 0.05,
            ip_rate: 0.0001,
            prefix_rate: 0.0,
        };
        let mut d = StudyDatasets::with_prefix_lengths(s.clone(), &[]);
        // Find a sampled user.
        let sampled_user = (0..10_000)
            .find(|&u| s.user_sampled(UserId(u)))
            .expect("some user sampled");
        for i in 0..50 {
            d.offer(rec(sampled_user, "2001:db8::1", i));
        }
        assert_eq!(
            d.user_sample.len(),
            50,
            "every request of a sampled user is kept"
        );
        // And an unsampled user contributes nothing.
        let unsampled = (0..10_000)
            .find(|&u| !s.user_sampled(UserId(u)))
            .expect("some user unsampled");
        d.offer(rec(unsampled, "2001:db8::2", 99));
        assert_eq!(d.user_sample.len(), 50);
    }

    #[test]
    #[should_panic(expected = "was not collected")]
    fn missing_prefix_length_panics() {
        let s = Samplers::paper();
        let mut d = StudyDatasets::with_prefix_lengths(s, &[64]);
        let _ = d.prefix_sample(56);
    }

    #[test]
    fn merge_equals_serial_offering() {
        let s = Samplers {
            request_rate: 0.5,
            user_rate: 0.5,
            ip_rate: 0.5,
            prefix_rate: 0.5,
        };
        let records: Vec<RequestRecord> = (0..200)
            .map(|i| {
                rec(
                    i,
                    if i % 3 == 0 {
                        "192.0.2.7"
                    } else {
                        "2001:db8::1"
                    },
                    i as u32,
                )
            })
            .collect();

        let mut serial = StudyDatasets::with_prefix_lengths(s.clone(), &[64, 48]);
        for r in &records {
            serial.offer(*r);
        }

        let mut left = StudyDatasets::with_prefix_lengths(s.clone(), &[64, 48]);
        let mut right = StudyDatasets::with_prefix_lengths(s, &[64, 48]);
        for r in &records[..120] {
            left.offer(*r);
        }
        for r in &records[120..] {
            right.offer(*r);
        }
        left.merge(right);

        assert_eq!(left.offered, serial.offered);
        assert_eq!(left.request_sample.all(), serial.request_sample.all());
        assert_eq!(left.user_sample.all(), serial.user_sample.all());
        assert_eq!(left.ip_sample.all(), serial.ip_sample.all());
        assert_eq!(left.prefix_sample(64).all(), serial.prefix_sample(64).all());
        assert_eq!(left.prefix_sample(48).all(), serial.prefix_sample(48).all());
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merge_rejects_mismatched_samplers() {
        let a = Samplers {
            request_rate: 0.5,
            user_rate: 0.5,
            ip_rate: 0.5,
            prefix_rate: 0.5,
        };
        let b = Samplers {
            request_rate: 0.25,
            ..a.clone()
        };
        let mut da = StudyDatasets::with_prefix_lengths(a, &[]);
        let db = StudyDatasets::with_prefix_lengths(b, &[]);
        da.merge(db);
    }

    #[test]
    #[should_panic(expected = "different prefix-length sets")]
    fn merge_rejects_mismatched_prefix_lengths() {
        let s = Samplers::paper();
        let mut da = StudyDatasets::with_prefix_lengths(s.clone(), &[64]);
        let db = StudyDatasets::with_prefix_lengths(s, &[64, 48]);
        da.merge(db);
    }

    #[test]
    fn retained_is_consistent() {
        let s = Samplers {
            request_rate: 1.0,
            user_rate: 1.0,
            ip_rate: 1.0,
            prefix_rate: 1.0,
        };
        let mut d = StudyDatasets::with_prefix_lengths(s, &[64]);
        d.offer(rec(1, "2001:db8::1", 0));
        assert_eq!(d.retained(), 4); // request + user + ip + one prefix store
    }
}
