//! The request-telemetry schema.
//!
//! §3.1 of the paper lists the telemetry collected per request: timestamp,
//! logged-in user id, source IP, the IP's ASN, and its country geolocation.
//! [`RequestRecord`] is exactly that tuple. Records are small `Copy` values
//! (32 bytes) so stores can hold tens of millions without indirection.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use ipv6_study_netaddr::{Ipv4Prefix, Ipv6Prefix};

use crate::ids::{Asn, Country, UserId};
use crate::time::Timestamp;

/// One authenticated request observed by the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// When the request arrived.
    pub ts: Timestamp,
    /// The logged-in account that made it.
    pub user: UserId,
    /// Source IP address.
    pub ip: IpAddr,
    /// ASN announcing the source address.
    pub asn: Asn,
    /// Country-level geolocation of the source address.
    pub country: Country,
}

impl RequestRecord {
    /// Whether the request arrived over IPv6.
    pub fn is_v6(&self) -> bool {
        matches!(self.ip, IpAddr::V6(_))
    }

    /// The source address as IPv6, if it is one.
    pub fn ipv6(&self) -> Option<Ipv6Addr> {
        match self.ip {
            IpAddr::V6(a) => Some(a),
            IpAddr::V4(_) => None,
        }
    }

    /// The source address as IPv4, if it is one.
    pub fn ipv4(&self) -> Option<Ipv4Addr> {
        match self.ip {
            IpAddr::V4(a) => Some(a),
            IpAddr::V6(_) => None,
        }
    }

    /// The enclosing IPv6 prefix of length `len`, when the source is IPv6.
    pub fn v6_prefix(&self, len: u8) -> Option<Ipv6Prefix> {
        self.ipv6().map(|a| Ipv6Prefix::containing(a, len))
    }

    /// The enclosing IPv4 prefix of length `len`, when the source is IPv4.
    pub fn v4_prefix(&self, len: u8) -> Option<Ipv4Prefix> {
        self.ipv4().map(|a| Ipv4Prefix::containing(a, len))
    }

    /// A stable 64-bit key for the source address (used by the IP sampler):
    /// IPv4 addresses map into the (reserved, never-routed) high space so
    /// they cannot collide with IPv6 keys.
    pub fn ip_key(&self) -> u64 {
        ip_key(self.ip)
    }
}

/// Stable 64-bit key for any address; see [`RequestRecord::ip_key`].
pub fn ip_key(ip: IpAddr) -> u64 {
    match ip {
        IpAddr::V4(a) => 0xFFFF_0000_0000_0000 | u64::from(u32::from(a)),
        IpAddr::V6(a) => {
            // Fold the 128 bits to 64 by XOR of the halves; the sampler
            // re-hashes, so structure here is harmless, but distinct
            // addresses should map to distinct keys with high probability.
            let raw = u128::from(a);
            (raw >> 64) as u64 ^ raw as u64 ^ 0x6_0000_0000_0000
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDate;

    fn rec(ip: IpAddr) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(12, 0, 0),
            user: UserId(7),
            ip,
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn protocol_accessors() {
        let v6 = rec("2001:db8::1".parse().unwrap());
        let v4 = rec("192.0.2.1".parse().unwrap());
        assert!(v6.is_v6());
        assert!(!v4.is_v6());
        assert_eq!(v6.ipv6(), Some("2001:db8::1".parse().unwrap()));
        assert_eq!(v6.ipv4(), None);
        assert_eq!(v4.ipv4(), Some("192.0.2.1".parse().unwrap()));
        assert_eq!(v4.ipv6(), None);
    }

    #[test]
    fn prefix_accessors() {
        let v6 = rec("2001:db8:1:2:3:4:5:6".parse().unwrap());
        assert_eq!(v6.v6_prefix(64).unwrap().to_string(), "2001:db8:1:2::/64");
        assert_eq!(v6.v4_prefix(24), None);
        let v4 = rec("192.0.2.99".parse().unwrap());
        assert_eq!(v4.v4_prefix(24).unwrap().to_string(), "192.0.2.0/24");
        assert_eq!(v4.v6_prefix(64), None);
    }

    #[test]
    fn ip_keys_do_not_collide_across_families() {
        let v4 = ip_key("192.0.2.1".parse().unwrap());
        // An IPv6 address engineered to fold to the same low 32 bits.
        let v6 = ip_key("::c000:201".parse().unwrap());
        assert_ne!(v4, v6);
        // Distinct v4s get distinct keys.
        assert_ne!(
            ip_key("10.0.0.1".parse().unwrap()),
            ip_key("10.0.0.2".parse().unwrap())
        );
    }

    #[test]
    fn record_is_small() {
        assert!(std::mem::size_of::<RequestRecord>() <= 40);
    }
}
