//! The study's calendar: dates and timestamps over the year 2020.
//!
//! The paper's datasets span Jan 23 – Apr 19 2020, with per-day analyses
//! (weekend effects, §4.1) and a focus week of Apr 13–19. A full civil-time
//! library would be overkill and nondeterministic temptation; instead we
//! model exactly what the study needs: days of one known leap year, with
//! weekday arithmetic anchored on the fact that 2020-01-01 was a Wednesday.

use std::fmt;
use std::ops::{Add, Sub};

/// Cumulative days before each month of 2020 (a leap year).
const CUM_DAYS: [u16; 13] = [0, 31, 60, 91, 121, 152, 182, 213, 244, 274, 305, 335, 366];

/// Days in each month of 2020.
const MONTH_DAYS: [u8; 12] = [31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A calendar date in 2020, stored as days since Jan 1 (day 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimDate(u16);

/// Day of week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Weekday {
    Mon,
    Tue,
    Wed,
    Thu,
    Fri,
    Sat,
    Sun,
}

impl SimDate {
    /// Constructs a date from month and day (both 1-based) in 2020.
    ///
    /// # Panics
    /// Panics on out-of-range month/day.
    pub fn ymd(month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!(
            day >= 1 && day <= MONTH_DAYS[(month - 1) as usize],
            "day out of range"
        );
        Self(CUM_DAYS[(month - 1) as usize] + u16::from(day) - 1)
    }

    /// Constructs from a raw day index (0 = Jan 1 2020).
    ///
    /// # Panics
    /// Panics if the index runs past 2020.
    pub fn from_index(idx: u16) -> Self {
        assert!(idx < 366, "day index out of 2020");
        Self(idx)
    }

    /// The raw day index (0 = Jan 1 2020).
    pub fn index(self) -> u16 {
        self.0
    }

    /// Month (1–12).
    pub fn month(self) -> u8 {
        (CUM_DAYS
            .iter()
            .position(|&c| c > self.0)
            .expect("index < 366")) as u8
    }

    /// Day of month (1-based).
    pub fn day(self) -> u8 {
        (self.0 - CUM_DAYS[(self.month() - 1) as usize] + 1) as u8
    }

    /// Day of week. Jan 1 2020 was a Wednesday.
    pub fn weekday(self) -> Weekday {
        match self.0 % 7 {
            0 => Weekday::Wed,
            1 => Weekday::Thu,
            2 => Weekday::Fri,
            3 => Weekday::Sat,
            4 => Weekday::Sun,
            5 => Weekday::Mon,
            _ => Weekday::Tue,
        }
    }

    /// Whether the date falls on a weekend.
    pub fn is_weekend(self) -> bool {
        matches!(self.weekday(), Weekday::Sat | Weekday::Sun)
    }

    /// The timestamp at `hh:mm:ss` on this date.
    ///
    /// Panics on an out-of-range time component, in release builds too:
    /// a wrapped timestamp would silently land the record on the wrong
    /// day and corrupt every downstream daily slice.
    pub fn at(self, hour: u8, min: u8, sec: u8) -> Timestamp {
        assert!(
            hour < 24 && min < 60 && sec < 60,
            "SimDate::at: invalid time {hour:02}:{min:02}:{sec:02}"
        );
        Timestamp(
            u32::from(self.0) * 86_400
                + u32::from(hour) * 3_600
                + u32::from(min) * 60
                + u32::from(sec),
        )
    }

    /// Midnight at the start of this date.
    pub fn start(self) -> Timestamp {
        self.at(0, 0, 0)
    }

    /// Days between two dates (`self - earlier`), saturating at 0 when
    /// `earlier` is later.
    ///
    /// Saturation is a bug trap on long timelines — a clamped distance
    /// silently shrinks lookback windows — so debug builds assert that
    /// `earlier <= self`. Use [`SimDate::checked_days_since`] when the
    /// ordering is genuinely unknown.
    pub fn days_since(self, earlier: SimDate) -> u16 {
        debug_assert!(
            earlier.0 <= self.0,
            "days_since saturated: {earlier} is after {self}"
        );
        self.0.saturating_sub(earlier.0)
    }

    /// Days between two dates (`self - earlier`), or `None` when
    /// `earlier` is later than `self`. The non-clamping form of
    /// [`SimDate::days_since`]: window builders use it so an
    /// out-of-range lookback is an explicit decision, never a silent
    /// truncation.
    pub fn checked_days_since(self, earlier: SimDate) -> Option<u16> {
        self.0.checked_sub(earlier.0)
    }

    /// The date `days` before `self`, or `None` when that would land
    /// before Jan 1 2020. The non-clamping form of `self - days`.
    pub fn checked_sub_days(self, days: u16) -> Option<SimDate> {
        self.0.checked_sub(days).map(SimDate)
    }
}

impl Add<u16> for SimDate {
    type Output = SimDate;
    fn add(self, days: u16) -> SimDate {
        SimDate::from_index(self.0 + days)
    }
}

impl Sub<u16> for SimDate {
    type Output = SimDate;
    /// Like [`SimDate::days_since`], the saturating path is asserted in
    /// debug builds; reach for [`SimDate::checked_sub_days`] instead of
    /// relying on the clamp.
    fn sub(self, days: u16) -> SimDate {
        debug_assert!(
            days <= self.0,
            "SimDate subtraction saturated: {self} - {days} days"
        );
        SimDate(self.0.saturating_sub(days))
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2020-{:02}-{:02}", self.month(), self.day())
    }
}

/// Seconds since 2020-01-01T00:00:00 (UTC, by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Timestamp(u32);

impl Timestamp {
    /// Constructs from raw seconds since the 2020 epoch.
    pub fn from_secs(secs: u32) -> Self {
        Self(secs)
    }

    /// Raw seconds since the 2020 epoch.
    pub fn secs(self) -> u32 {
        self.0
    }

    /// The calendar date containing this instant.
    pub fn date(self) -> SimDate {
        SimDate::from_index((self.0 / 86_400) as u16)
    }

    /// Hour of day (0–23).
    pub fn hour(self) -> u8 {
        ((self.0 % 86_400) / 3_600) as u8
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        let rem = self.0 % 86_400;
        write!(
            f,
            "{}T{:02}:{:02}:{:02}",
            d,
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

/// An inclusive range of dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DateRange {
    /// First day (inclusive).
    pub start: SimDate,
    /// Last day (inclusive).
    pub end: SimDate,
}

impl DateRange {
    /// Creates a range; `start` must not exceed `end`.
    ///
    /// # Panics
    /// Panics when `start > end`.
    pub fn new(start: SimDate, end: SimDate) -> Self {
        assert!(start <= end, "range start after end");
        Self { start, end }
    }

    /// A single-day range.
    pub fn single(day: SimDate) -> Self {
        Self {
            start: day,
            end: day,
        }
    }

    /// Whether `d` lies inside the range.
    pub fn contains(&self, d: SimDate) -> bool {
        (self.start..=self.end).contains(&d)
    }

    /// Number of days in the range (≥ 1).
    pub fn num_days(&self) -> u16 {
        self.end.index() - self.start.index() + 1
    }

    /// Iterates the days in order.
    pub fn days(&self) -> impl Iterator<Item = SimDate> {
        (self.start.index()..=self.end.index()).map(SimDate::from_index)
    }

    /// Timestamp bounds `[start_of_first_day, end_of_last_day]`.
    pub fn ts_bounds(&self) -> (Timestamp, Timestamp) {
        (
            self.start.start(),
            Timestamp::from_secs((u32::from(self.end.index()) + 1) * 86_400 - 1),
        )
    }
}

/// First day of the paper's request/user random samples (Jan 23 2020).
pub fn study_start() -> SimDate {
    SimDate::ymd(1, 23)
}

/// Last day of the study window (Apr 19 2020).
pub fn study_end() -> SimDate {
    SimDate::ymd(4, 19)
}

/// The full Jan 23 – Apr 19 study window.
pub fn study_range() -> DateRange {
    DateRange::new(study_start(), study_end())
}

/// The focus week Apr 13–19 2020, "the overlapping time frame among our
/// datasets" (§4.1), on which most analyses run.
pub fn focus_week() -> DateRange {
    DateRange::new(SimDate::ymd(4, 13), SimDate::ymd(4, 19))
}

/// The single focus day Apr 19 used by the one-day analyses in §5, and
/// Apr 13 used by the IP-centric one-day analyses in §6.1.
pub fn focus_day_user() -> SimDate {
    SimDate::ymd(4, 19)
}

/// The one-day window (Apr 13) used by the users-per-IP analyses (Fig 7/8).
pub fn focus_day_ip() -> SimDate {
    SimDate::ymd(4, 13)
}

/// A pre-pandemic comparison week (Feb 12–18, used in Appendix A.5).
pub fn prepandemic_week() -> DateRange {
    DateRange::new(SimDate::ymd(2, 12), SimDate::ymd(2, 18))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "invalid time")]
    fn at_rejects_out_of_range_components_in_release_too() {
        let _ = SimDate::ymd(4, 19).at(24, 0, 0);
    }

    #[test]
    fn at_accepts_the_last_second_of_the_day() {
        let ts = SimDate::ymd(1, 1).at(23, 59, 59);
        assert_eq!(ts.0, 86_399);
    }

    #[test]
    fn known_dates() {
        assert_eq!(SimDate::ymd(1, 1).index(), 0);
        assert_eq!(SimDate::ymd(1, 31).index(), 30);
        assert_eq!(SimDate::ymd(2, 29).index(), 59); // 2020 is a leap year
        assert_eq!(SimDate::ymd(3, 1).index(), 60);
        assert_eq!(SimDate::ymd(12, 31).index(), 365);
    }

    #[test]
    fn month_day_round_trip() {
        for idx in 0..366 {
            let d = SimDate::from_index(idx);
            assert_eq!(SimDate::ymd(d.month(), d.day()), d);
        }
    }

    #[test]
    fn weekdays_match_2020_calendar() {
        assert_eq!(SimDate::ymd(1, 1).weekday(), Weekday::Wed);
        // The paper's Figure 1 marks Saturdays; Jan 25 2020 was a Saturday.
        assert_eq!(SimDate::ymd(1, 25).weekday(), Weekday::Sat);
        assert!(SimDate::ymd(1, 25).is_weekend());
        assert_eq!(SimDate::ymd(3, 9).weekday(), Weekday::Mon); // Italy lockdown
        assert_eq!(SimDate::ymd(4, 13).weekday(), Weekday::Mon);
        assert_eq!(SimDate::ymd(4, 19).weekday(), Weekday::Sun);
        assert!(!SimDate::ymd(4, 17).is_weekend());
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn rejects_feb_30() {
        SimDate::ymd(2, 30);
    }

    #[test]
    fn date_arithmetic() {
        let d = SimDate::ymd(4, 19);
        assert_eq!(d - 6, SimDate::ymd(4, 13));
        assert_eq!(SimDate::ymd(4, 13) + 6, d);
        assert_eq!(d.days_since(SimDate::ymd(4, 13)), 6);
    }

    #[test]
    fn checked_arithmetic_at_boundaries() {
        let epoch = SimDate::from_index(0);
        let year_end = SimDate::from_index(365);

        // Day 0: zero distance is fine, any reach past Jan 1 is None.
        assert_eq!(epoch.checked_days_since(epoch), Some(0));
        assert_eq!(epoch.checked_sub_days(0), Some(epoch));
        assert_eq!(epoch.checked_sub_days(1), None);
        assert_eq!(epoch.checked_days_since(SimDate::ymd(1, 2)), None);

        // Year end: the full year span is representable, one more is not.
        assert_eq!(year_end.checked_days_since(epoch), Some(365));
        assert_eq!(year_end.checked_sub_days(365), Some(epoch));
        assert_eq!(year_end.checked_sub_days(366), None);
        assert_eq!(
            SimDate::ymd(4, 19).checked_days_since(SimDate::ymd(4, 13)),
            Some(6)
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "days_since saturated")]
    fn days_since_asserts_on_saturation_in_debug() {
        let _ = SimDate::ymd(4, 13).days_since(SimDate::ymd(4, 19));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "subtraction saturated")]
    fn sub_asserts_on_saturation_in_debug() {
        let _ = SimDate::ymd(1, 3) - 10;
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn saturating_paths_clamp_in_release() {
        assert_eq!(SimDate::ymd(4, 13).days_since(SimDate::ymd(4, 19)), 0);
        assert_eq!(SimDate::ymd(1, 3) - 10, SimDate::ymd(1, 1));
    }

    #[test]
    fn timestamps() {
        let ts = SimDate::ymd(1, 2).at(13, 30, 5);
        assert_eq!(ts.secs(), 86_400 + 13 * 3600 + 30 * 60 + 5);
        assert_eq!(ts.date(), SimDate::ymd(1, 2));
        assert_eq!(ts.hour(), 13);
        assert_eq!(ts.to_string(), "2020-01-02T13:30:05");
        assert_eq!(SimDate::ymd(1, 1).start().secs(), 0);
    }

    #[test]
    fn ranges() {
        let r = focus_week();
        assert_eq!(r.num_days(), 7);
        assert!(r.contains(SimDate::ymd(4, 16)));
        assert!(!r.contains(SimDate::ymd(4, 20)));
        let days: Vec<SimDate> = r.days().collect();
        assert_eq!(days.len(), 7);
        assert_eq!(days[0], SimDate::ymd(4, 13));
        assert_eq!(days[6], SimDate::ymd(4, 19));
        let (lo, hi) = r.ts_bounds();
        assert_eq!(lo.date(), SimDate::ymd(4, 13));
        assert_eq!(hi.date(), SimDate::ymd(4, 19));
        assert_eq!((hi.secs() + 1) % 86_400, 0);
    }

    #[test]
    fn study_constants() {
        assert_eq!(study_range().num_days(), 88);
        assert_eq!(study_start().to_string(), "2020-01-23");
        assert_eq!(study_end().to_string(), "2020-04-19");
        assert_eq!(DateRange::single(focus_day_ip()).num_days(), 1);
    }
}
