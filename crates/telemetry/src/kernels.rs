//! Vectorized columnar kernels: branchless selection masks, stable LSB
//! radix sorts, and reusable scratch arenas.
//!
//! The struct-of-arrays layout of [`crate::columns`] is built for
//! data-parallel scans, but until this module the hot paths still walked
//! it row-at-a-time through [`RecordView`](crate::columns::RecordView)
//! reconstruction and ordered it with comparison sorts. The kernels here
//! are the scan/sort/scratch primitives those paths run on instead:
//!
//! - **Selection masks** — [`SelectionMask`] packs one predicate bit per
//!   row, 64 rows per `u64` word. The builders ([`mask_ts_window`],
//!   [`mask_eq_u32`], [`mask_from`]) evaluate the predicate branchlessly
//!   (`pred as u64` arithmetic, no per-row branch) and the combinators
//!   ([`SelectionMask::and`], [`SelectionMask::or`]) are word-wise bit
//!   ops. Consumers walk selected rows with a trailing-zeros loop
//!   ([`SelectionMask::for_each`]) — no row is ever rematerialized just
//!   to be filtered out.
//! - **Radix sorts** — [`radix_sort_perm_u32`] computes the permutation
//!   that stable-sorts a `u32`-keyed column ascending, as a counting
//!   (LSB-first) radix sort: 4 passes of 8 bits, each pass a stable
//!   counting redistribution, passes whose byte is constant across the
//!   column skipped. A stable LSB radix sort produces **the identical
//!   permutation** to `sort_by_key` (Rust's stable sort) on the same
//!   keys — pinned by tests here and by the index/driver equivalence
//!   suites — so swapping it into the driver's sort phase and the
//!   [`DatasetIndex`](../../ipv6_study_analysis/index/struct.DatasetIndex.html)
//!   build leaves every golden digest byte-identical. [`radix_sort_u32`]
//!   and [`radix_sort_u64`] sort plain key vectors in place (for
//!   sort-and-dedup distinct-key paths, where any correct sort agrees).
//! - **Scratch arenas** — the radix passes need transient count/key/perm
//!   buffers, and the analysis engine invokes them thousands of times
//!   per run (six shared indexes plus every `ctx.index(..)` call in the
//!   20 passes). [`ScratchArena`] pools those buffers per thread:
//!   [`with_scratch`] leases cleared-but-capacitated `Vec`s from a
//!   thread-local pool, and the engine calls [`scratch_reset`] between
//!   passes to assert the lease discipline (everything returned) while
//!   retaining capacity — so repeated passes stop paying per-invocation
//!   allocation.
//!
//! Everything is std-only: the "vectorization" is word-level bit
//! batching and bounds-check-free chunked loops the optimizer
//! auto-vectorizes, not intrinsics.

use std::cell::RefCell;

use crate::ids::Asn;
use crate::intern::IpId;
use crate::record::RequestRecord;
use crate::time::Timestamp;

// ---------------------------------------------------------------------------
// u32-keyed column views
// ---------------------------------------------------------------------------

/// A column element with a `u32` sort/selection key whose unsigned order
/// equals the element's own [`Ord`] — the contract that makes radix
/// passes and mask builders over typed columns equivalent to their
/// row-oriented counterparts.
pub trait U32Key: Copy {
    /// The element's packed `u32` key.
    fn key32(self) -> u32;
}

impl U32Key for u32 {
    #[inline]
    fn key32(self) -> u32 {
        self
    }
}

impl U32Key for Timestamp {
    #[inline]
    fn key32(self) -> u32 {
        self.secs()
    }
}

impl U32Key for IpId {
    #[inline]
    fn key32(self) -> u32 {
        self.raw()
    }
}

impl U32Key for Asn {
    #[inline]
    fn key32(self) -> u32 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Selection masks
// ---------------------------------------------------------------------------

/// A packed per-row selection vector: bit `i % 64` of word `i / 64` is
/// set when row `i` passes the predicate. Unused tail bits of the last
/// word are always zero, so word-wise combinators and popcounts need no
/// tail masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionMask {
    bits: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// A mask over `len` rows with no row selected.
    pub fn none(len: usize) -> Self {
        Self {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// A mask over `len` rows with every row selected.
    pub fn all(len: usize) -> Self {
        let mut bits = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = bits.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Self { bits, len }
    }

    /// Number of rows the mask covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of selected rows (a word-wise popcount).
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Intersects with `other` in place. Both masks must cover the same
    /// row count.
    pub fn and(&mut self, other: &SelectionMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w &= o;
        }
    }

    /// Unions with `other` in place. Both masks must cover the same row
    /// count.
    pub fn or(&mut self, other: &SelectionMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    /// Calls `f` with each selected row index, ascending — a
    /// trailing-zeros loop over the set bits, so cost scales with the
    /// selected count plus the word count, not the row count times a
    /// per-row branch.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// The selected row indices, ascending.
    pub fn indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each(|i| out.push(i as u32));
        out
    }
}

/// Builds a mask by evaluating `pred` over every element of `col`,
/// branchlessly: each row contributes `(pred as u64) << bit` to its
/// word, and the column is walked in bounds-check-free 64-row chunks.
pub fn mask_from<K: Copy>(col: &[K], pred: impl Fn(K) -> bool) -> SelectionMask {
    let mut bits = Vec::with_capacity(col.len().div_ceil(64));
    let mut chunks = col.chunks_exact(64);
    for chunk in &mut chunks {
        let mut w = 0u64;
        for (bit, &k) in chunk.iter().enumerate() {
            w |= (pred(k) as u64) << bit;
        }
        bits.push(w);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut w = 0u64;
        for (bit, &k) in tail.iter().enumerate() {
            w |= (pred(k) as u64) << bit;
        }
        bits.push(w);
    }
    SelectionMask {
        bits,
        len: col.len(),
    }
}

/// Selects the rows whose timestamp lies in `[lo, hi]` (inclusive) — the
/// date-window predicate every windowed pass starts from.
pub fn mask_ts_window(ts: &[Timestamp], lo: Timestamp, hi: Timestamp) -> SelectionMask {
    let (lo, hi) = (lo.secs(), hi.secs());
    mask_from(ts, move |t: Timestamp| {
        let s = t.secs();
        (s >= lo) & (s <= hi)
    })
}

/// Selects the rows whose `u32` key equals `val` (equality over ASN, id,
/// or raw u32 columns).
pub fn mask_eq_u32<K: U32Key>(col: &[K], val: u32) -> SelectionMask {
    mask_from(col, move |k: K| k.key32() == val)
}

/// Number of rows of `col` passing `pred`, without materializing
/// anything (a fused mask + popcount).
pub fn filter_count<K: Copy>(col: &[K], pred: impl Fn(K) -> bool) -> usize {
    // One word at a time keeps the popcount off the per-row path.
    let mut chunks = col.chunks_exact(64);
    let mut n = 0usize;
    for chunk in &mut chunks {
        let mut w = 0u64;
        for (bit, &k) in chunk.iter().enumerate() {
            w |= (pred(k) as u64) << bit;
        }
        n += w.count_ones() as usize;
    }
    for &k in chunks.remainder() {
        n += pred(k) as usize;
    }
    n
}

// ---------------------------------------------------------------------------
// Scratch arenas
// ---------------------------------------------------------------------------

/// A pool of reusable scratch buffers for kernel invocations.
///
/// Leased buffers come back cleared (`len == 0`) but keep their
/// capacity, so a worker that runs many kernel calls (the analysis
/// engine runs six shared index builds plus every `ctx.index(..)` in 20
/// passes) allocates each buffer class once and reuses it for the rest
/// of the run. The lease discipline is strict: every `lease_*` must be
/// paired with a `restore_*` before [`ScratchArena::reset`] — the
/// engine's between-passes reset asserts the balance in debug builds.
#[derive(Debug, Default)]
pub struct ScratchArena {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    outstanding: usize,
    leases: u64,
    reuses: u64,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases a cleared `Vec<u32>` with at least `cap` capacity.
    pub fn lease_u32(&mut self, cap: usize) -> Vec<u32> {
        self.leases += 1;
        self.outstanding += 1;
        match self.u32s.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v.reserve(cap);
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Returns a leased `Vec<u32>` to the pool.
    pub fn restore_u32(&mut self, v: Vec<u32>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if v.capacity() > 0 {
            self.u32s.push(v);
        }
    }

    /// Leases a cleared `Vec<u64>` with at least `cap` capacity.
    pub fn lease_u64(&mut self, cap: usize) -> Vec<u64> {
        self.leases += 1;
        self.outstanding += 1;
        match self.u64s.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v.reserve(cap);
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Returns a leased `Vec<u64>` to the pool.
    pub fn restore_u64(&mut self, v: Vec<u64>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if v.capacity() > 0 {
            self.u64s.push(v);
        }
    }

    /// Marks a pass boundary: asserts (in debug builds) that every lease
    /// was restored, and retains the pooled capacity for the next pass.
    pub fn reset(&mut self) {
        debug_assert_eq!(
            self.outstanding, 0,
            "scratch lease leaked across a pass boundary"
        );
    }

    /// Releases every pooled buffer (end-of-engine teardown).
    pub fn trim(&mut self) {
        self.u32s = Vec::new();
        self.u64s = Vec::new();
    }

    /// Heap bytes currently retained by pooled buffers.
    pub fn retained_bytes(&self) -> usize {
        self.u32s.iter().map(|v| v.capacity() * 4).sum::<usize>()
            + self.u64s.iter().map(|v| v.capacity() * 8).sum::<usize>()
    }

    /// `(leases served, leases satisfied by reuse)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.leases, self.reuses)
    }
}

thread_local! {
    static SCRATCH: RefCell<ScratchArena> = RefCell::new(ScratchArena::new());
}

/// Runs `f` with the calling thread's scratch arena. Do not call
/// [`with_scratch`] reentrantly from inside `f` — the arena is a
/// thread-local `RefCell`.
pub fn with_scratch<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Marks a pass boundary on the calling thread's arena (see
/// [`ScratchArena::reset`]). The analysis engine calls this between
/// passes.
pub fn scratch_reset() {
    with_scratch(ScratchArena::reset);
}

/// `(leases, reuses, retained bytes)` of the calling thread's arena —
/// surfaced by `bench_kernels` to show the reuse rate.
pub fn scratch_stats() -> (u64, u64, usize) {
    with_scratch(|s| {
        let (leases, reuses) = s.stats();
        (leases, reuses, s.retained_bytes())
    })
}

// ---------------------------------------------------------------------------
// Radix sorts
// ---------------------------------------------------------------------------

/// One stable counting pass: redistributes `(keys, payload)` by the byte
/// at `shift`, into `(keys_out, payload_out)`. Returns `false` (pass
/// skipped) when the byte is constant across all keys — the
/// redistribution would be the identity.
fn counting_pass_u32(
    keys: &[u32],
    payload: &[u32],
    keys_out: &mut [u32],
    payload_out: &mut [u32],
    shift: u32,
) -> bool {
    let mut counts = [0usize; 256];
    for &k in keys {
        counts[(k >> shift & 0xff) as usize] += 1;
    }
    if counts.contains(&keys.len()) {
        return false;
    }
    let mut sum = 0usize;
    for c in counts.iter_mut() {
        let here = *c;
        *c = sum;
        sum += here;
    }
    for (&k, &p) in keys.iter().zip(payload) {
        let bucket = (k >> shift & 0xff) as usize;
        let dst = counts[bucket];
        counts[bucket] += 1;
        keys_out[dst] = k;
        payload_out[dst] = p;
    }
    true
}

/// Computes the permutation that stable-sorts `col` ascending by its
/// `u32` key — `perm[rank] = original index`. Byte-identical to
/// `{ let mut p: Vec<u32> = (0..n).collect(); p.sort_by_key(|&i| col[i]); p }`:
/// LSB-first counting radix is stable per pass, and stable per-pass
/// redistribution composes to the full stable order.
pub fn radix_sort_perm_u32<K: U32Key>(col: &[K]) -> Vec<u32> {
    radix_sort_perm_keys(col.iter().map(|k| k.key32()))
}

/// [`radix_sort_perm_u32`] over an arbitrary exact-size key stream (for
/// callers whose keys are computed, e.g. a row store sorting by
/// timestamp). Keys are staged in a scratch-arena buffer.
pub fn radix_sort_perm_keys(keys_in: impl ExactSizeIterator<Item = u32>) -> Vec<u32> {
    let n = keys_in.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if n <= 1 {
        // Consume the iterator contract cheaply; nothing to reorder.
        return perm;
    }
    with_scratch(|arena| {
        let mut keys = arena.lease_u32(n);
        keys.extend(keys_in);
        let mut keys_tmp = arena.lease_u32(n);
        let mut perm_tmp = arena.lease_u32(n);
        keys_tmp.resize(n, 0);
        perm_tmp.resize(n, 0);
        for shift in [0u32, 8, 16, 24] {
            if counting_pass_u32(&keys, &perm, &mut keys_tmp, &mut perm_tmp, shift) {
                std::mem::swap(&mut keys, &mut keys_tmp);
                std::mem::swap(&mut perm, &mut perm_tmp);
            }
        }
        arena.restore_u32(keys);
        arena.restore_u32(keys_tmp);
        arena.restore_u32(perm_tmp);
    });
    perm
}

/// Stable-sorts a record buffer by timestamp through the radix
/// permutation — byte-identical order to
/// `records.sort_by_key(|r| r.ts)` (the permutation is the stable one,
/// see [`radix_sort_perm_keys`]), which is the invariant the driver's
/// sort phase and the spill layer's per-segment sorts rely on for
/// golden-digest stability.
pub fn radix_sort_records_by_ts(records: &mut Vec<RequestRecord>) {
    if records.len() <= 1 {
        return;
    }
    let perm = radix_sort_perm_keys(records.iter().map(|r| r.ts.secs()));
    let sorted: Vec<RequestRecord> = perm.iter().map(|&i| records[i as usize]).collect();
    *records = sorted;
}

/// Sorts a plain `u32` key vector ascending in place (LSB counting
/// radix). Equal keys are indistinguishable, so this agrees with any
/// correct sort — it replaces `sort_unstable` on distinct-key paths.
pub fn radix_sort_u32(v: &mut Vec<u32>) {
    let n = v.len();
    if n <= 1 {
        return;
    }
    with_scratch(|arena| {
        let mut tmp = arena.lease_u32(n);
        tmp.resize(n, 0);
        for shift in [0u32, 8, 16, 24] {
            let mut counts = [0usize; 256];
            for &k in v.iter() {
                counts[(k >> shift & 0xff) as usize] += 1;
            }
            if counts.contains(&n) {
                continue;
            }
            let mut sum = 0usize;
            for c in counts.iter_mut() {
                let here = *c;
                *c = sum;
                sum += here;
            }
            for &k in v.iter() {
                let bucket = (k >> shift & 0xff) as usize;
                tmp[counts[bucket]] = k;
                counts[bucket] += 1;
            }
            std::mem::swap(v, &mut tmp);
        }
        arena.restore_u32(tmp);
    });
}

/// Sorts a plain `u64` key vector ascending in place (LSB counting
/// radix, 8 byte passes, constant-byte passes skipped). Replaces
/// `sort_unstable` on distinct-key paths such as intern-table builds
/// and [`RequestStore::distinct_users`](crate::RequestStore::distinct_users).
pub fn radix_sort_u64(v: &mut Vec<u64>) {
    let n = v.len();
    if n <= 1 {
        return;
    }
    with_scratch(|arena| {
        let mut tmp = arena.lease_u64(n);
        tmp.resize(n, 0);
        for pass in 0..8u32 {
            let shift = pass * 8;
            let mut counts = [0usize; 256];
            for &k in v.iter() {
                counts[(k >> shift & 0xff) as usize] += 1;
            }
            if counts.contains(&n) {
                continue;
            }
            let mut sum = 0usize;
            for c in counts.iter_mut() {
                let here = *c;
                *c = sum;
                sum += here;
            }
            for &k in v.iter() {
                let bucket = (k >> shift & 0xff) as usize;
                tmp[counts[bucket]] = k;
                counts[bucket] += 1;
            }
            std::mem::swap(v, &mut tmp);
        }
        arena.restore_u64(tmp);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::testgen::TestGen;

    fn seeded_keys(seed: u64, n: usize, span: u64) -> Vec<u32> {
        let mut g = TestGen::new(seed);
        g.vec_of(n, |g| g.below(span) as u32)
    }

    #[test]
    fn mask_builders_match_scalar_filtering() {
        let mut g = TestGen::new(7);
        let ts: Vec<Timestamp> = g.vec_of(1000, |g| Timestamp::from_secs(g.below(500_000) as u32));
        let (lo, hi) = (Timestamp::from_secs(100_000), Timestamp::from_secs(300_000));
        let mask = mask_ts_window(&ts, lo, hi);
        assert_eq!(mask.len(), ts.len());
        let expected: Vec<usize> = (0..ts.len())
            .filter(|&i| ts[i] >= lo && ts[i] <= hi)
            .collect();
        assert_eq!(
            mask.indices(),
            expected.iter().map(|&i| i as u32).collect::<Vec<_>>()
        );
        assert_eq!(mask.count(), expected.len());
        for &i in &expected {
            assert!(mask.contains(i));
        }
        assert_eq!(
            filter_count(&ts, |t| t >= lo && t <= hi),
            expected.len(),
            "fused filter_count agrees with the mask popcount"
        );
    }

    #[test]
    fn mask_combinators_and_tail_bits() {
        // 70 rows: one full word plus a 6-bit tail.
        let col: Vec<u32> = (0..70).collect();
        let evens = mask_from(&col, |k| k % 2 == 0);
        let small = mask_from(&col, |k| k < 10);
        let mut both = evens.clone();
        both.and(&small);
        assert_eq!(both.indices(), vec![0, 2, 4, 6, 8]);
        let mut either = evens.clone();
        either.or(&small);
        assert_eq!(either.count(), 35 + 10 - 5);
        // all()/none() keep tail bits clean: popcounts are exact.
        assert_eq!(SelectionMask::all(70).count(), 70);
        assert_eq!(SelectionMask::none(70).count(), 0);
        assert_eq!(SelectionMask::all(64).count(), 64);
        assert_eq!(SelectionMask::all(0).count(), 0);
        let mut empty = SelectionMask::none(0);
        empty.or(&SelectionMask::all(0));
        assert!(empty.is_empty());
    }

    #[test]
    fn mask_eq_over_typed_columns() {
        let asns = [Asn(10), Asn(20), Asn(10), Asn(30)];
        assert_eq!(mask_eq_u32(&asns, 10).indices(), vec![0, 2]);
        let ids = [IpId::new(false, 3), IpId::new(true, 3), IpId::new(false, 3)];
        assert_eq!(mask_eq_u32(&ids, ids[1].raw()).indices(), vec![1]);
    }

    #[test]
    fn radix_perm_equals_stable_comparison_sort() {
        for (seed, n, span) in [
            (1u64, 0usize, 10u64),
            (2, 1, 10),
            (3, 64, 4),   // heavy duplicates, exactly one word
            (4, 1000, 8), // heavy duplicates: stability matters
            (5, 1000, 1), // all keys equal: every pass skipped
            (6, 2500, u64::from(u32::MAX) - 1),
            (7, 257, 300),
        ] {
            let keys = seeded_keys(seed, n, span);
            let radix = radix_sort_perm_u32(&keys);
            let mut comparison: Vec<u32> = (0..n as u32).collect();
            comparison.sort_by_key(|&i| keys[i as usize]);
            assert_eq!(
                radix, comparison,
                "radix != stable sort for seed {seed} n {n} span {span}"
            );
        }
    }

    #[test]
    fn radix_in_place_sorts_match_sort_unstable() {
        let mut g = TestGen::new(11);
        let mut v32: Vec<u32> = g.vec_of(3000, |g| g.next_u64() as u32);
        let mut expected32 = v32.clone();
        radix_sort_u32(&mut v32);
        expected32.sort_unstable();
        assert_eq!(v32, expected32);

        let mut v64: Vec<u64> = g.vec_of(3000, |g| g.next_u64() >> g.below(40));
        let mut expected64 = v64.clone();
        radix_sort_u64(&mut v64);
        expected64.sort_unstable();
        assert_eq!(v64, expected64);

        let mut tiny: Vec<u64> = vec![5];
        radix_sort_u64(&mut tiny);
        assert_eq!(tiny, [5]);
        let mut none: Vec<u32> = Vec::new();
        radix_sort_u32(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn record_sort_matches_stable_sort_by_key() {
        use crate::ids::{Country, UserId};
        let mut g = TestGen::new(99);
        // Duplicate-heavy timestamps: user ids disambiguate tie order, so
        // equality below proves stability, not just sortedness.
        let mut records: Vec<RequestRecord> = g.vec_of(500, |g| RequestRecord {
            ts: Timestamp::from_secs(g.below(32) as u32),
            user: UserId(g.next_u64()),
            ip: std::net::IpAddr::V4(std::net::Ipv4Addr::from(g.next_u64() as u32)),
            asn: Asn(g.below(1000) as u32),
            country: Country::new("US"),
        });
        let mut expected = records.clone();
        expected.sort_by_key(|r| r.ts);
        radix_sort_records_by_ts(&mut records);
        assert_eq!(records, expected);
        scratch_reset();
    }

    #[test]
    fn arena_reuses_buffers_across_leases() {
        let mut arena = ScratchArena::new();
        let a = arena.lease_u32(100);
        assert!(a.capacity() >= 100);
        arena.restore_u32(a);
        let b = arena.lease_u32(50);
        assert!(b.capacity() >= 100, "restored capacity is reused");
        assert!(b.is_empty(), "leases come back cleared");
        arena.restore_u32(b);
        let (leases, reuses) = arena.stats();
        assert_eq!((leases, reuses), (2, 1));
        assert!(arena.retained_bytes() >= 400);
        arena.reset(); // balanced: no debug assert
        arena.trim();
        assert_eq!(arena.retained_bytes(), 0);
    }

    #[test]
    fn thread_local_scratch_accumulates_reuse() {
        // Two sorts on this thread: the second must reuse the first's
        // buffers.
        let keys = seeded_keys(42, 512, 1000);
        let (l0, _, _) = scratch_stats();
        let _ = radix_sort_perm_u32(&keys);
        let _ = radix_sort_perm_u32(&keys);
        let (l1, r1, retained) = scratch_stats();
        assert!(l1 > l0);
        assert!(r1 > 0, "second sort reuses pooled buffers");
        assert!(retained > 0);
        scratch_reset(); // balanced on this thread
    }
}
