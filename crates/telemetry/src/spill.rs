//! Out-of-core segment storage: bounded, crash-safe spill of request
//! streams to disk.
//!
//! The in-memory pipeline holds every retained record as a 40-byte
//! [`RequestRecord`] until the driver's sort phase — O(records) peak
//! memory, which caps the simulable population. This module removes that
//! floor: a shard's sink can stream each dataset family into a
//! [`SegmentWriter`] that stages at most `segment_rows` records, stable-
//! sorts each full segment by timestamp, and appends it to a per-family
//! spill file as one **sorted run**. After the sim phase, the driver
//! rebuilds the exact in-memory byte order with a k-way merge over all
//! runs ([`merge_manifests`]) — no record is ever re-buffered wholesale.
//!
//! # Determinism (merge-by-concatenation)
//!
//! The in-memory pipeline's final order is a *stable* sort by timestamp
//! of the shard outputs concatenated in plan order; ties resolve by
//! emission order. Spill reproduces it exactly:
//!
//! 1. within a run, the staging buffer is stable-sorted, so equal
//!    timestamps keep emission order;
//! 2. runs partition a shard's emission stream contiguously, and
//!    manifests are merged in plan order, so a global run index is
//!    order-isomorphic to "position in the concatenated stream";
//! 3. the k-way merge pops by `(timestamp, run index)`, which is exactly
//!    the stable sort's tie-break.
//!
//! The merge phase itself moves no records between files — shard
//! manifests simply concatenate in plan order ("merge-by-concatenation");
//! all inter-run ordering is deferred to the single streaming pass that
//! encodes rows into the columnar stores.
//!
//! # Fault safety
//!
//! Nothing on the I/O path panics. Every fallible operation returns a
//! typed [`SpillError`]:
//!
//! * [`SpillError::Io`] — an operating-system error (create/write/flush/
//!   open/seek/read), with the path and operation that failed. Run writes
//!   are all-or-nothing: a failed frame write truncates the file back to
//!   the pre-run length and is retried up to
//!   [`SpillPolicy::max_io_retries`] times before surfacing, so a
//!   transient error never leaves a torn run behind.
//! * [`SpillError::Corrupt`] — on-disk data failed verification at read
//!   time: a bad run header, a truncated (torn) run, an unknown row tag,
//!   or a checksum mismatch. Reported with path, run index and byte
//!   offset.
//! * [`SpillError::Budget`] — admitting the next run would exceed the
//!   session's [`SpillPolicy::disk_budget_bytes`]. The driver maps this
//!   to a policy-governed degradation instead of filling the disk.
//!
//! Each run is written as a self-describing frame — a
//! [`RUN_HEADER_BYTES`]-byte header (magic, row count, xxHash64 chain
//! checksum) followed by the 35-byte rows — and both read passes (key
//! collection and the k-way merge) re-derive the checksum and length so
//! torn writes and flipped bytes are *detected*, never decoded into
//! figures. A failed attempt's partial files are deleted by
//! [`SpillSession::remove_attempt`]; the whole session directory is
//! removed when the [`SpillSession`] drops — on success and on failure
//! paths alike.
//!
//! Deterministic I/O fault injection for chaos tests rides on
//! [`SpillFaultPlan`]: every decision is a pure function of (seed, stream
//! id, op index, io attempt), where the stream id hashes the file name —
//! which encodes shard, attempt and family — so injected faults are
//! byte-reproducible at any thread count.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::net::IpAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ipv6_study_stats::dist::uniform01;
use ipv6_study_stats::hash::{stable_hash64, StableHasher};

use crate::columns::ColumnStore;
use crate::ids::{Asn, Country, UserId};
use crate::intern::{EntityTables, IpTable, UserTable};
use crate::record::RequestRecord;
use crate::store::{FrozenStore, RequestStore};
use crate::time::Timestamp;

/// Default rows staged per spill segment. Chosen so a shard's staging
/// buffers stay a few megabytes across all dataset families while keeping
/// the per-family run count (one merge cursor each) well under typical
/// file-descriptor limits.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// Bytes of one encoded spill row: timestamp (4) + user (8) + family tag
/// (1) + address (16, IPv4 in the first four bytes) + ASN (4) +
/// country (2).
pub const SPILL_ROW_BYTES: usize = 35;

/// Bytes of the per-run frame header: magic (4) + row count (8) +
/// checksum (8).
pub const RUN_HEADER_BYTES: usize = 20;

/// Default op-level retry budget for a failed spill read or write.
pub const DEFAULT_IO_RETRIES: u32 = 2;

/// Frame magic marking the start of every sorted run on disk.
const RUN_MAGIC: u32 = u32::from_le_bytes(*b"SPR1");

/// Seed of the per-run xxHash64 chain checksum
/// (`acc' = xxh64(acc, row_bytes)`).
const CHECKSUM_SEED: u64 = 0x5350_4C43; // "SPLC"

/// Where a study keeps its full-fidelity and sampled streams during the
/// sim phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageMode {
    /// Every retained record stays in memory until the sort phase — the
    /// original pipeline. Peak memory is O(retained records).
    #[default]
    InMemory,
    /// Shards stream every dataset family into bounded sorted segments on
    /// disk; peak memory is O(`segment_rows` × families × worker threads),
    /// independent of the population.
    Spill {
        /// Parent directory for the per-run spill session directory;
        /// `None` uses [`std::env::temp_dir`]. The session directory is
        /// removed when the run completes (or fails).
        dir: Option<PathBuf>,
        /// Rows staged in memory per family before a segment is sorted
        /// and appended to disk as one run. Must be non-zero.
        segment_rows: usize,
    },
}

impl StorageMode {
    /// The spill mode with default parameters (temp dir,
    /// [`DEFAULT_SEGMENT_ROWS`]).
    pub fn spill() -> Self {
        StorageMode::Spill {
            dir: None,
            segment_rows: DEFAULT_SEGMENT_ROWS,
        }
    }

    /// Whether this mode spills to disk.
    pub fn is_spill(&self) -> bool {
        matches!(self, StorageMode::Spill { .. })
    }

    /// Short machine-readable label (`"memory"` / `"spill"`), echoed into
    /// run reports.
    pub fn label(&self) -> &'static str {
        match self {
            StorageMode::InMemory => "memory",
            StorageMode::Spill { .. } => "spill",
        }
    }
}

/// The I/O operation a [`SpillError::Io`] failed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoOp {
    /// Creating a segment file or the session directory.
    Create,
    /// Appending a run frame.
    Write,
    /// Flushing buffered bytes to the OS.
    Flush,
    /// Opening a segment file for reading.
    Open,
    /// Seeking to a run or rolling a torn frame back.
    Seek,
    /// Reading a header or row.
    Read,
}

impl IoOp {
    /// Lower-case operation name for messages.
    pub fn as_str(self) -> &'static str {
        match self {
            IoOp::Create => "create",
            IoOp::Write => "write",
            IoOp::Flush => "flush",
            IoOp::Open => "open",
            IoOp::Seek => "seek",
            IoOp::Read => "read",
        }
    }
}

/// A typed storage-layer failure. Cheap to clone and comparable, so it
/// can ride inside higher-level error enums and test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpillError {
    /// The operating system refused an I/O operation (after the op-level
    /// retry budget was spent).
    Io {
        /// Segment file (or directory) the operation targeted.
        path: PathBuf,
        /// Which operation failed.
        op: IoOp,
        /// The OS error class.
        kind: std::io::ErrorKind,
        /// Human-readable detail from the underlying error.
        detail: String,
    },
    /// On-disk data failed verification: bad header, torn (truncated)
    /// run, unknown row tag, or checksum mismatch.
    Corrupt {
        /// Segment file holding the bad bytes.
        path: PathBuf,
        /// Zero-based run index within the file.
        run: usize,
        /// Absolute byte offset of the bad data within the file.
        offset: u64,
        /// What failed to verify.
        reason: String,
    },
    /// Admitting the next run frame would exceed the session's disk
    /// budget.
    Budget {
        /// The configured [`SpillPolicy::disk_budget_bytes`].
        budget_bytes: u64,
        /// The on-disk total the write would have reached.
        attempted_bytes: u64,
    },
}

impl SpillError {
    fn io(path: &Path, op: IoOp, e: &std::io::Error) -> Self {
        SpillError::Io {
            path: path.to_path_buf(),
            op,
            kind: e.kind(),
            detail: e.to_string(),
        }
    }

    /// Whether a shard-level retry could plausibly clear this error.
    /// Io errors are transient-capable; corruption and budget overruns
    /// are not fixed by re-running the same work.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SpillError::Io { .. })
    }
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io {
                path,
                op,
                kind,
                detail,
            } => write!(
                f,
                "spill {} {} failed ({kind:?}): {detail}",
                op.as_str(),
                path.display()
            ),
            SpillError::Corrupt {
                path,
                run,
                offset,
                reason,
            } => write!(
                f,
                "corrupt spill data in {} (run {run}, byte offset {offset}): {reason}",
                path.display()
            ),
            SpillError::Budget {
                budget_bytes,
                attempted_bytes,
            } => write!(
                f,
                "spill disk budget exceeded: write would reach {attempted_bytes} bytes \
                 (budget {budget_bytes})"
            ),
        }
    }
}

impl std::error::Error for SpillError {}

/// Deterministic I/O fault script for chaos tests. Every decision is a
/// pure function of `(seed, stream id, op index, io attempt)` — the
/// stream id hashes the segment file name, which encodes shard, attempt
/// and family — so the same faults fire at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillFaultPlan {
    /// Study seed mixed into every roll.
    pub seed: u64,
    /// Probability that a run-frame write op is faulted.
    pub write_fail_rate: f64,
    /// Probability that a header/row read op is faulted.
    pub read_fail_rate: f64,
    /// Of faulted writes, the fraction that tear a short prefix of the
    /// frame onto disk before failing (exercising the rollback path).
    pub short_write_rate: f64,
    /// Probability that a successfully written run gets one byte flipped
    /// afterwards (detected later by the checksum, never repaired).
    pub corrupt_rate: f64,
    /// How many consecutive io attempts a faulted op fails before
    /// succeeding; values above the retry budget make the op error out.
    pub fail_attempts: u32,
}

impl Default for SpillFaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            write_fail_rate: 0.0,
            read_fail_rate: 0.0,
            short_write_rate: 0.0,
            corrupt_rate: 0.0,
            fail_attempts: 1,
        }
    }
}

impl SpillFaultPlan {
    /// Uniform roll in [0,1) for one (domain, stream, op) triple.
    fn roll(&self, domain: u64, stream: u64, op: u64) -> f64 {
        let mut h = StableHasher::new(domain);
        h.write_u64(self.seed).write_u64(stream).write_u64(op);
        uniform01(h.finish())
    }

    /// The injected failure for write op `op` on `stream` at `io_attempt`,
    /// if any: `Some(short_bytes)` tears that many frame bytes onto disk
    /// first; `Some(0)` fails cleanly.
    fn write_failure(
        &self,
        stream: u64,
        op: u64,
        io_attempt: u32,
        frame_len: usize,
    ) -> Option<usize> {
        if io_attempt >= self.fail_attempts
            || self.roll(0x5346_5057, stream, op) >= self.write_fail_rate
        {
            return None;
        }
        if self.roll(0x5346_5053, stream, op) < self.short_write_rate {
            let mut h = StableHasher::new(0x5346_504C);
            h.write_u64(self.seed).write_u64(stream).write_u64(op);
            Some((h.finish() % frame_len.max(1) as u64) as usize)
        } else {
            Some(0)
        }
    }

    /// Whether read op `op` on `stream` is faulted at `io_attempt`.
    fn read_failure(&self, stream: u64, op: u64, io_attempt: u32) -> bool {
        io_attempt < self.fail_attempts && self.roll(0x5346_5052, stream, op) < self.read_fail_rate
    }

    /// The payload byte to flip after write op `op`, if this run is
    /// selected for corruption.
    fn corrupt_offset(&self, stream: u64, op: u64, payload_len: u64) -> Option<u64> {
        if payload_len == 0 || self.roll(0x5346_5043, stream, op) >= self.corrupt_rate {
            return None;
        }
        let mut h = StableHasher::new(0x5346_504F);
        h.write_u64(self.seed).write_u64(stream).write_u64(op);
        Some(h.finish() % payload_len)
    }

    /// Whether every rate is zero (the plan can be dropped).
    pub fn is_inert(&self) -> bool {
        self.write_fail_rate == 0.0 && self.read_fail_rate == 0.0 && self.corrupt_rate == 0.0
    }
}

/// Session-wide storage policy: op-level retry budget, optional disk
/// budget, optional fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillPolicy {
    /// How many times a failed read/write op is retried in place before
    /// surfacing as [`SpillError::Io`].
    pub max_io_retries: u32,
    /// Hard cap on the session's total on-disk bytes; `None` is
    /// unlimited. Exceeding it surfaces [`SpillError::Budget`].
    pub disk_budget_bytes: Option<u64>,
    /// Deterministic fault injection for chaos tests; `None` is a clean
    /// session.
    pub faults: Option<SpillFaultPlan>,
}

impl Default for SpillPolicy {
    fn default() -> Self {
        Self {
            max_io_retries: DEFAULT_IO_RETRIES,
            disk_budget_bytes: None,
            faults: None,
        }
    }
}

/// Snapshot of a session's storage-fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Read/write ops that failed once and were retried in place.
    pub io_retries: u64,
    /// Runs whose checksum (or framing) failed verification.
    pub checksum_failures: u64,
    /// Payload bytes that passed checksum verification, summed over both
    /// read passes (key collection and the k-way merge).
    pub bytes_verified: u64,
    /// Current on-disk bytes across every live segment file.
    pub bytes_written: u64,
}

/// Shared mutable state of one session: the policy plus fault counters,
/// handed by `Arc` to every writer and manifest.
#[derive(Debug, Default)]
struct SpillShared {
    policy: SpillPolicy,
    io_retries: AtomicU64,
    checksum_failures: AtomicU64,
    bytes_verified: AtomicU64,
    bytes_written: AtomicU64,
}

impl SpillShared {
    fn stats(&self) -> SpillStats {
        SpillStats {
            io_retries: self.io_retries.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            bytes_verified: self.bytes_verified.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Releases `len` bytes of on-disk accounting (saturating — a failed
    /// rollback can leave the file longer than the accounted frames).
    fn release_bytes(&self, len: u64) {
        let mut cur = self.bytes_written.load(Ordering::Relaxed);
        while let Err(actual) = self.bytes_written.compare_exchange_weak(
            cur,
            cur.saturating_sub(len),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            cur = actual;
        }
    }
}

/// Stable per-file stream id for fault keying: hashes the file name,
/// which encodes `(shard, attempt, family)`.
fn stream_id(path: &Path) -> u64 {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    stable_hash64(0x5354_524D, name.as_bytes()) // "STRM"
}

/// A shared high-water-mark gauge over the mutable (row-format) bytes the
/// sim phase holds in memory: shard-local in-memory stores plus spill
/// staging buffers. Frozen columnar output, intern tables, and merge
/// cursors are excluded — the gauge measures what *scales with work in
/// flight*, which is what the out-of-core pipeline bounds.
#[derive(Debug, Default)]
pub struct MemGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemGauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a sink's current byte count: adjusts the shared total by
    /// the delta against what this sink last published (tracked in
    /// `published`, one counter per shard attempt) and raises the peak.
    pub fn publish(&self, published: &AtomicU64, now: u64) {
        let prev = published.swap(now, Ordering::Relaxed);
        let cur = if now >= prev {
            self.current.fetch_add(now - prev, Ordering::Relaxed) + (now - prev)
        } else {
            self.current.fetch_sub(prev - now, Ordering::Relaxed) - (prev - now)
        };
        self.peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Releases everything an attempt had published — called when the
    /// attempt panics and its buffers are discarded by the unwind.
    pub fn release(&self, published: &AtomicU64) {
        let prev = published.swap(0, Ordering::Relaxed);
        self.current.fetch_sub(prev, Ordering::Relaxed);
    }

    /// The current published total.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The high-water mark across the run so far.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Reads a little-endian u32 from the first four bytes of `b`.
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Reads a little-endian u64 from the first eight bytes of `b`.
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Reads a little-endian u128 from the first sixteen bytes of `b`.
fn le_u128(b: &[u8]) -> u128 {
    let mut w = [0u8; 16];
    w.copy_from_slice(&b[..16]);
    u128::from_le_bytes(w)
}

/// Encodes one record into the fixed 35-byte spill row format.
fn encode_row(r: &RequestRecord, buf: &mut [u8; SPILL_ROW_BYTES]) {
    buf[0..4].copy_from_slice(&r.ts.secs().to_le_bytes());
    buf[4..12].copy_from_slice(&r.user.raw().to_le_bytes());
    match r.ip {
        IpAddr::V4(a) => {
            buf[12] = 4;
            buf[13..17].copy_from_slice(&u32::from(a).to_le_bytes());
            buf[17..29].fill(0);
        }
        IpAddr::V6(a) => {
            buf[12] = 6;
            buf[13..29].copy_from_slice(&u128::from(a).to_le_bytes());
        }
    }
    buf[29..33].copy_from_slice(&r.asn.0.to_le_bytes());
    buf[33..35].copy_from_slice(&r.country.0);
}

/// Decodes one 35-byte spill row back into a record; `Err` carries the
/// unknown family tag.
fn decode_row(buf: &[u8; SPILL_ROW_BYTES]) -> Result<RequestRecord, u8> {
    let ts = le_u32(&buf[0..4]);
    let user = le_u64(&buf[4..12]);
    let ip = match buf[12] {
        4 => IpAddr::V4(std::net::Ipv4Addr::from(le_u32(&buf[13..17]))),
        6 => IpAddr::V6(std::net::Ipv6Addr::from(le_u128(&buf[13..29]))),
        tag => return Err(tag),
    };
    let asn = le_u32(&buf[29..33]);
    Ok(RequestRecord {
        ts: Timestamp::from_secs(ts),
        user: UserId(user),
        ip,
        asn: Asn(asn),
        country: Country([buf[33], buf[34]]),
    })
}

/// Monotonic discriminator so concurrent sessions in one process never
/// collide on a directory name.
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One run's private spill directory. Files are created lazily by
/// [`SegmentWriter`]s; the directory (and everything in it) is removed on
/// drop, so a completed — or aborted — run leaves nothing behind.
#[derive(Debug)]
pub struct SpillSession {
    dir: PathBuf,
    shared: Arc<SpillShared>,
}

impl SpillSession {
    /// Creates a fresh, uniquely-named session directory under `parent`
    /// (or the system temp dir) with the default [`SpillPolicy`].
    pub fn create(parent: Option<&Path>) -> std::io::Result<Self> {
        Self::create_with(parent, SpillPolicy::default())
    }

    /// Creates a session with an explicit storage policy (retry budget,
    /// disk budget, fault plan).
    pub fn create_with(parent: Option<&Path>, policy: SpillPolicy) -> std::io::Result<Self> {
        let parent = parent
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let n = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = parent.join(format!("ipv6-spill-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            shared: Arc::new(SpillShared {
                policy,
                ..SpillShared::default()
            }),
        })
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the session's storage-fault counters.
    pub fn stats(&self) -> SpillStats {
        self.shared.stats()
    }

    /// The filename prefix shared by every file of one shard attempt.
    fn attempt_prefix(shard: usize, attempt: u32) -> String {
        format!("s{shard:05}-a{attempt:02}-")
    }

    /// A segment writer for one `(shard, attempt, family)` stream.
    pub fn writer(
        &self,
        shard: usize,
        attempt: u32,
        family: &str,
        segment_rows: usize,
    ) -> SegmentWriter {
        let name = format!("{}{family}.seg", Self::attempt_prefix(shard, attempt));
        SegmentWriter::new(self.dir.join(name), segment_rows, Arc::clone(&self.shared))
    }

    /// Best-effort removal of every file a failed attempt wrote, so a
    /// retried shard starts from a clean directory and a completed run
    /// holds only the files of successful attempts. Removed bytes are
    /// released back to the disk budget.
    pub fn remove_attempt(&self, shard: usize, attempt: u32) {
        let prefix = Self::attempt_prefix(shard, attempt);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix))
            {
                let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
                if std::fs::remove_file(entry.path()).is_ok() {
                    self.shared.release_bytes(len);
                }
            }
        }
    }
}

impl Drop for SpillSession {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// One sorted run's location and verification data within a segment
/// file: byte offset of its frame header, row count, chain checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunMeta {
    offset: u64,
    rows: u64,
    checksum: u64,
}

/// Where one family's spilled stream lives: its file plus the frame
/// metadata of each sorted run, in emission order.
#[derive(Debug, Clone)]
pub struct RunManifest {
    path: PathBuf,
    runs: Vec<RunMeta>,
    shared: Arc<SpillShared>,
}

impl RunManifest {
    /// Total rows across all runs.
    pub fn rows(&self) -> u64 {
        self.runs.iter().map(|r| r.rows).sum()
    }

    /// Number of sorted runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

/// Streams one family's records into bounded sorted runs on disk.
///
/// Records are staged in memory; when the staging buffer reaches
/// `segment_rows` it is stable-sorted by timestamp and appended to the
/// file as one checksummed frame. The file is created lazily on the first
/// flush, so record-free families cost nothing.
///
/// Frame writes are all-or-nothing: on any write failure (real or
/// injected) the file is truncated back to the pre-run length and the
/// whole frame is retried up to the policy's op-retry budget, after which
/// the error surfaces as a typed [`SpillError`].
#[derive(Debug)]
pub struct SegmentWriter {
    path: PathBuf,
    stream: u64,
    file: Option<File>,
    file_len: u64,
    staging: Vec<RequestRecord>,
    segment_rows: usize,
    runs: Vec<RunMeta>,
    write_ops: u64,
    shared: Arc<SpillShared>,
}

impl SegmentWriter {
    fn new(path: PathBuf, segment_rows: usize, shared: Arc<SpillShared>) -> Self {
        debug_assert!(segment_rows > 0, "segment_rows must be non-zero");
        let stream = stream_id(&path);
        Self {
            path,
            stream,
            file: None,
            file_len: 0,
            staging: Vec::new(),
            segment_rows: segment_rows.max(1),
            runs: Vec::new(),
            write_ops: 0,
            shared,
        }
    }

    /// Appends one record, flushing a full segment to disk.
    pub fn push(&mut self, rec: RequestRecord) -> Result<(), SpillError> {
        self.staging.push(rec);
        if self.staging.len() >= self.segment_rows {
            self.flush_run()?;
        }
        Ok(())
    }

    /// Bytes currently staged in memory (logical row bytes, the unit the
    /// [`MemGauge`] tracks).
    pub fn staged_bytes(&self) -> u64 {
        (self.staging.len() * std::mem::size_of::<RequestRecord>()) as u64
    }

    /// Sorts and appends the staged records as one checksummed run frame.
    fn flush_run(&mut self) -> Result<(), SpillError> {
        if self.staging.is_empty() {
            return Ok(());
        }
        // Stable: equal timestamps keep emission order, exactly like the
        // in-memory store's final sort (same radix permutation path).
        crate::kernels::radix_sort_records_by_ts(&mut self.staging);

        // Build the whole frame in memory (bounded by the segment
        // envelope the staging buffer already paid for) so the write is
        // a single all-or-nothing op.
        let rows = self.staging.len() as u64;
        let payload_len = self.staging.len() * SPILL_ROW_BYTES;
        let mut frame = Vec::with_capacity(RUN_HEADER_BYTES + payload_len);
        frame.extend_from_slice(&RUN_MAGIC.to_le_bytes());
        frame.extend_from_slice(&rows.to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]); // checksum patched below
        let mut buf = [0u8; SPILL_ROW_BYTES];
        let mut checksum = CHECKSUM_SEED;
        for r in &self.staging {
            encode_row(r, &mut buf);
            checksum = stable_hash64(checksum, &buf);
            frame.extend_from_slice(&buf);
        }
        frame[12..20].copy_from_slice(&checksum.to_le_bytes());
        let frame_len = frame.len() as u64;

        // Disk-budget admission: reserve the frame before writing; the
        // reservation is released again on failure (and by
        // `remove_attempt` when a failed attempt's files are deleted).
        let prev = self
            .shared
            .bytes_written
            .fetch_add(frame_len, Ordering::Relaxed);
        if let Some(budget) = self.shared.policy.disk_budget_bytes {
            if prev + frame_len > budget {
                self.shared.release_bytes(frame_len);
                return Err(SpillError::Budget {
                    budget_bytes: budget,
                    attempted_bytes: prev + frame_len,
                });
            }
        }

        if let Err(e) = self.write_frame(&frame) {
            self.shared.release_bytes(frame_len);
            return Err(e);
        }
        self.runs.push(RunMeta {
            offset: self.file_len,
            rows,
            checksum,
        });
        self.file_len += frame_len;
        self.staging.clear();
        Ok(())
    }

    /// Writes one frame at the current end of file, rolling a torn write
    /// back and retrying within the op budget.
    fn write_frame(&mut self, frame: &[u8]) -> Result<(), SpillError> {
        let op = self.write_ops;
        self.write_ops += 1;
        let start = self.file_len;
        if self.file.is_none() {
            let f = File::create(&self.path)
                .map_err(|e| SpillError::io(&self.path, IoOp::Create, &e))?;
            self.file = Some(f);
        }
        // The file handle exists for the rest of this call.
        let mut io_attempt = 0u32;
        loop {
            let injected = self
                .shared
                .policy
                .faults
                .as_ref()
                .and_then(|p| p.write_failure(self.stream, op, io_attempt, frame.len()));
            let result: std::io::Result<()> = match (&mut self.file, injected) {
                (Some(f), Some(short)) => {
                    // Tear `short` frame bytes onto disk, then report the
                    // injected transient failure.
                    let _ = f.write_all(&frame[..short]);
                    Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected transient write fault",
                    ))
                }
                (Some(f), None) => f.write_all(frame),
                (None, _) => return Ok(()), // unreachable: created above
            };
            match result {
                Ok(()) => break,
                Err(e) => {
                    // All-or-nothing: drop whatever prefix landed.
                    if let Some(f) = &mut self.file {
                        f.set_len(start)
                            .map_err(|t| SpillError::io(&self.path, IoOp::Write, &t))?;
                        f.seek(SeekFrom::Start(start))
                            .map_err(|t| SpillError::io(&self.path, IoOp::Seek, &t))?;
                    }
                    if io_attempt < self.shared.policy.max_io_retries {
                        self.shared.io_retries.fetch_add(1, Ordering::Relaxed);
                        io_attempt += 1;
                        continue;
                    }
                    return Err(SpillError::io(&self.path, IoOp::Write, &e));
                }
            }
        }
        // Deterministic post-write corruption (chaos tests): flip one
        // payload byte so the read-side checksum must catch it.
        if let Some(plan) = self.shared.policy.faults.as_ref() {
            if let Some(off) =
                plan.corrupt_offset(self.stream, op, (frame.len() - RUN_HEADER_BYTES) as u64)
            {
                if let Some(f) = &mut self.file {
                    let pos = start + RUN_HEADER_BYTES as u64 + off;
                    let flipped = [frame[RUN_HEADER_BYTES + off as usize] ^ 0xA5];
                    f.seek(SeekFrom::Start(pos))
                        .map_err(|e| SpillError::io(&self.path, IoOp::Seek, &e))?;
                    f.write_all(&flipped)
                        .map_err(|e| SpillError::io(&self.path, IoOp::Write, &e))?;
                    f.seek(SeekFrom::Start(start + frame.len() as u64))
                        .map_err(|e| SpillError::io(&self.path, IoOp::Seek, &e))?;
                }
            }
        }
        Ok(())
    }

    /// Flushes the final partial run and the OS buffer. Idempotent.
    pub fn finish(&mut self) -> Result<(), SpillError> {
        self.flush_run()?;
        if let Some(f) = self.file.as_mut() {
            f.flush()
                .map_err(|e| SpillError::io(&self.path, IoOp::Flush, &e))?;
        }
        Ok(())
    }

    /// Consumes the writer into its manifest; [`SegmentWriter::finish`]
    /// must have been called (asserted).
    pub fn into_manifest(mut self) -> RunManifest {
        debug_assert!(self.staging.is_empty(), "into_manifest before finish()");
        if let Some(f) = self.file.take() {
            drop(f);
        }
        RunManifest {
            path: self.path,
            runs: self.runs,
            shared: self.shared,
        }
    }
}

/// A buffered reader over one segment file that routes every read op
/// through the fault plan and maps failures to typed errors.
struct FaultedReader {
    reader: BufReader<File>,
    path: PathBuf,
    stream: u64,
    ops: u64,
    shared: Arc<SpillShared>,
}

impl FaultedReader {
    fn open(
        path: &Path,
        offset: u64,
        op_base: u64,
        shared: Arc<SpillShared>,
    ) -> Result<Self, SpillError> {
        let mut file = File::open(path).map_err(|e| SpillError::io(path, IoOp::Open, &e))?;
        if offset > 0 {
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| SpillError::io(path, IoOp::Seek, &e))?;
        }
        Ok(Self {
            reader: BufReader::new(file),
            path: path.to_path_buf(),
            stream: stream_id(path),
            ops: op_base,
            shared,
        })
    }

    /// One read op: injected faults are decided *before* the data moves,
    /// so an op-level retry simply re-issues the same read. A short file
    /// (torn write) surfaces as [`SpillError::Corrupt`] at the given run
    /// and offset.
    fn read_exact_op(&mut self, buf: &mut [u8], run: usize, offset: u64) -> Result<(), SpillError> {
        let op = self.ops;
        self.ops += 1;
        if let Some(plan) = self.shared.policy.faults.as_ref() {
            let mut io_attempt = 0u32;
            while plan.read_failure(self.stream, op, io_attempt) {
                if io_attempt >= self.shared.policy.max_io_retries {
                    return Err(SpillError::Io {
                        path: self.path.clone(),
                        op: IoOp::Read,
                        kind: std::io::ErrorKind::Interrupted,
                        detail: "injected transient read fault".into(),
                    });
                }
                self.shared.io_retries.fetch_add(1, Ordering::Relaxed);
                io_attempt += 1;
            }
        }
        self.reader.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                self.shared
                    .checksum_failures
                    .fetch_add(1, Ordering::Relaxed);
                SpillError::Corrupt {
                    path: self.path.clone(),
                    run,
                    offset,
                    reason: "unexpected end of file (torn write?)".into(),
                }
            } else {
                SpillError::io(&self.path, IoOp::Read, &e)
            }
        })
    }

    /// Reads and validates one run's frame header against the manifest.
    fn read_header(&mut self, run: usize, meta: &RunMeta) -> Result<(), SpillError> {
        let mut hdr = [0u8; RUN_HEADER_BYTES];
        self.read_exact_op(&mut hdr, run, meta.offset)?;
        let corrupt = |reason: String| {
            self.shared
                .checksum_failures
                .fetch_add(1, Ordering::Relaxed);
            Err(SpillError::Corrupt {
                path: self.path.clone(),
                run,
                offset: meta.offset,
                reason,
            })
        };
        let magic = le_u32(&hdr[0..4]);
        if magic != RUN_MAGIC {
            return corrupt(format!("bad run magic {magic:#010x}"));
        }
        let rows = le_u64(&hdr[4..12]);
        if rows != meta.rows {
            return corrupt(format!("header rows {rows} != manifest rows {}", meta.rows));
        }
        let checksum = le_u64(&hdr[12..20]);
        if checksum != meta.checksum {
            return corrupt(format!(
                "header checksum {checksum:#018x} != manifest checksum {:#018x}",
                meta.checksum
            ));
        }
        Ok(())
    }
}

/// Decodes one row, mapping an unknown family tag to a located
/// [`SpillError::Corrupt`].
fn decode_row_at(
    buf: &[u8; SPILL_ROW_BYTES],
    shared: &SpillShared,
    path: &Path,
    run: usize,
    row_offset: u64,
) -> Result<RequestRecord, SpillError> {
    decode_row(buf).map_err(|tag| {
        shared.checksum_failures.fetch_add(1, Ordering::Relaxed);
        SpillError::Corrupt {
            path: path.to_path_buf(),
            run,
            offset: row_offset + 12, // the family-tag byte
            reason: format!("unknown family tag {tag}"),
        }
    })
}

/// Reads an entire manifest sequentially (run after run, i.e. file
/// order), feeding each decoded record to `f`. Used for the key-collection
/// pass, where order is irrelevant. Every run's length framing and chain
/// checksum are verified; corruption surfaces as a typed error.
pub fn read_manifest(m: &RunManifest, mut f: impl FnMut(RequestRecord)) -> Result<(), SpillError> {
    if m.runs.is_empty() {
        return Ok(());
    }
    let mut reader = FaultedReader::open(&m.path, 0, 0, Arc::clone(&m.shared))?;
    let mut buf = [0u8; SPILL_ROW_BYTES];
    for (run, meta) in m.runs.iter().enumerate() {
        reader.read_header(run, meta)?;
        let mut checksum = CHECKSUM_SEED;
        for row in 0..meta.rows {
            let row_offset = meta.offset + RUN_HEADER_BYTES as u64 + row * SPILL_ROW_BYTES as u64;
            reader.read_exact_op(&mut buf, run, row_offset)?;
            checksum = stable_hash64(checksum, &buf);
            f(decode_row_at(&buf, &m.shared, &m.path, run, row_offset)?);
        }
        if checksum != meta.checksum {
            m.shared.checksum_failures.fetch_add(1, Ordering::Relaxed);
            return Err(SpillError::Corrupt {
                path: m.path.clone(),
                run,
                offset: meta.offset,
                reason: format!(
                    "run checksum mismatch: computed {checksum:#018x}, expected {:#018x}",
                    meta.checksum
                ),
            });
        }
        m.shared
            .bytes_verified
            .fetch_add(meta.rows * SPILL_ROW_BYTES as u64, Ordering::Relaxed);
    }
    Ok(())
}

/// Accumulates the distinct entity keys of a record stream with periodic
/// sort+dedup compaction, then builds the shared [`EntityTables`].
///
/// `EntityTables` construction is order-independent given the same key
/// sets (sort + dedup erase arrival order), so tables built here over
/// spilled streams are bit-identical to tables built in memory over the
/// same records — the linchpin of spill-mode determinism.
#[derive(Debug, Default)]
pub struct KeyCollector {
    v4: Vec<u32>,
    v6: Vec<u128>,
    users: Vec<u64>,
    compact_at: usize,
}

/// Compaction floor: below this many buffered keys, dedup isn't worth it.
const COMPACT_FLOOR: usize = 1 << 20;

impl KeyCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self {
            compact_at: COMPACT_FLOOR,
            ..Self::default()
        }
    }

    /// Adds one record's keys.
    pub fn add(&mut self, rec: &RequestRecord) {
        match rec.ip {
            IpAddr::V4(a) => self.v4.push(u32::from(a)),
            IpAddr::V6(a) => self.v6.push(u128::from(a)),
        }
        self.users.push(rec.user.raw());
        if self.v4.len() + self.v6.len() + self.users.len() > self.compact_at {
            self.compact();
        }
    }

    /// Adds every record of an in-memory store.
    pub fn add_store(&mut self, store: &RequestStore) {
        for r in store.iter_unordered() {
            self.add(r);
        }
    }

    /// Adds every record of a spilled manifest (sequential verified read).
    pub fn add_manifest(&mut self, m: &RunManifest) -> Result<(), SpillError> {
        let mut keys = std::mem::take(self);
        let result = read_manifest(m, |rec| keys.add(&rec));
        *self = keys;
        result
    }

    fn compact(&mut self) {
        crate::kernels::radix_sort_u32(&mut self.v4);
        self.v4.dedup();
        self.v6.sort_unstable();
        self.v6.dedup();
        crate::kernels::radix_sort_u64(&mut self.users);
        self.users.dedup();
        let len = self.v4.len() + self.v6.len() + self.users.len();
        self.compact_at = (len * 2).max(COMPACT_FLOOR);
    }

    /// Builds the shared intern tables from the collected keys.
    pub fn into_tables(self) -> EntityTables {
        EntityTables {
            ips: IpTable::from_keys(self.v4, self.v6),
            users: UserTable::from_keys(self.users),
        }
    }
}

/// One run's streaming read cursor for the k-way merge.
///
/// The whole run is **verified before it streams**: `open` makes one
/// chunked pass over the payload to check the chain checksum (and the
/// length framing via short-read detection), then rewinds. Records
/// therefore decode from verified bytes only — corruption can never
/// reach the columnar encoder, whose intern lookups assume keys seen by
/// the collection pass.
struct RunCursor {
    reader: FaultedReader,
    meta: RunMeta,
    run: usize,
    row: u64,
    manifest_path: PathBuf,
    shared: Arc<SpillShared>,
}

impl RunCursor {
    fn open(m: &RunManifest, run: usize) -> Result<Self, SpillError> {
        let meta = m.runs[run];
        // Op indices restart per cursor; basing them on the run's row
        // position keeps fault keying distinct across a file's runs.
        let op_base = meta.offset / SPILL_ROW_BYTES as u64;
        let mut reader = FaultedReader::open(&m.path, meta.offset, op_base, Arc::clone(&m.shared))?;
        reader.read_header(run, &meta)?;

        // Verification pass: fold the chain checksum over the payload in
        // row-sized steps (bounded buffer, no run is buffered wholesale).
        let mut checksum = CHECKSUM_SEED;
        let mut buf = [0u8; SPILL_ROW_BYTES];
        for row in 0..meta.rows {
            let row_offset = meta.offset + RUN_HEADER_BYTES as u64 + row * SPILL_ROW_BYTES as u64;
            reader.read_exact_op(&mut buf, run, row_offset)?;
            checksum = stable_hash64(checksum, &buf);
        }
        if checksum != meta.checksum {
            m.shared.checksum_failures.fetch_add(1, Ordering::Relaxed);
            return Err(SpillError::Corrupt {
                path: m.path.clone(),
                run,
                offset: meta.offset,
                reason: format!(
                    "run checksum mismatch: computed {checksum:#018x}, expected {:#018x}",
                    meta.checksum
                ),
            });
        }
        m.shared
            .bytes_verified
            .fetch_add(meta.rows * SPILL_ROW_BYTES as u64, Ordering::Relaxed);

        // Rewind to the payload start for the streaming pass.
        let reader = FaultedReader::open(
            &m.path,
            meta.offset + RUN_HEADER_BYTES as u64,
            op_base,
            Arc::clone(&m.shared),
        )?;
        Ok(Self {
            reader,
            meta,
            run,
            row: 0,
            manifest_path: m.path.clone(),
            shared: Arc::clone(&m.shared),
        })
    }

    fn next(&mut self) -> Result<Option<RequestRecord>, SpillError> {
        if self.row >= self.meta.rows {
            return Ok(None);
        }
        let row_offset =
            self.meta.offset + RUN_HEADER_BYTES as u64 + self.row * SPILL_ROW_BYTES as u64;
        self.row += 1;
        let mut buf = [0u8; SPILL_ROW_BYTES];
        self.reader.read_exact_op(&mut buf, self.run, row_offset)?;
        decode_row_at(
            &buf,
            &self.shared,
            &self.manifest_path,
            self.run,
            row_offset,
        )
        .map(Some)
    }
}

/// K-way merges one family's manifests (in plan order) into a timestamp-
/// sorted columnar store encoded against shared intern tables.
///
/// Ties pop by global run index (manifest order × run order), which is
/// exactly the stable tie-break of the in-memory pipeline's sort over the
/// plan-order concatenation — so the output columns are byte-identical to
/// the in-memory path. One cursor (file handle + small read buffer) is
/// open per run; no run is ever re-buffered wholesale. Every run's
/// framing and checksum are verified as it streams; corruption surfaces
/// as a typed error, never as silently wrong figures.
pub fn merge_manifests(
    manifests: &[RunManifest],
    tables: &Arc<EntityTables>,
) -> Result<ColumnStore, SpillError> {
    let mut cursors: Vec<RunCursor> = Vec::new();
    let mut total_rows: usize = 0;
    for m in manifests {
        for run in 0..m.runs.len() {
            if m.runs[run].rows > 0 {
                cursors.push(RunCursor::open(m, run)?);
                total_rows += m.runs[run].rows as usize;
            }
        }
    }
    let mut cols = ColumnStore::default();
    cols.ts.reserve_exact(total_rows);
    cols.ip.reserve_exact(total_rows);
    cols.user.reserve_exact(total_rows);
    cols.asn.reserve_exact(total_rows);
    cols.country.reserve_exact(total_rows);

    // Min-heap keyed (timestamp, run index); `current[i]` holds cursor
    // `i`'s front record. Runs are non-empty by construction, so every
    // cursor's first read yields; `Option` keeps that fact out of the
    // unsafe-free invariant instead of asserting it.
    let mut current: Vec<Option<RequestRecord>> = Vec::with_capacity(cursors.len());
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> =
        BinaryHeap::with_capacity(cursors.len());
    for (i, c) in cursors.iter_mut().enumerate() {
        let front = c.next()?;
        if let Some(r) = &front {
            heap.push(std::cmp::Reverse((r.ts.secs(), i)));
        }
        current.push(front);
    }
    while let Some(std::cmp::Reverse((_, i))) = heap.pop() {
        if let Some(r) = current[i].take() {
            cols.push_encoded(&r, tables);
        }
        if let Some(r) = cursors[i].next()? {
            heap.push(std::cmp::Reverse((r.ts.secs(), i)));
            current[i] = Some(r);
        }
    }
    debug_assert_eq!(cols.len(), total_rows);
    Ok(cols)
}

/// Convenience: merges one family's manifests straight into a
/// [`FrozenStore`] over shared tables.
pub fn merge_into_frozen(
    manifests: &[RunManifest],
    tables: &Arc<EntityTables>,
) -> Result<FrozenStore, SpillError> {
    Ok(FrozenStore::from_sorted_parts(
        merge_manifests(manifests, tables)?,
        Arc::clone(tables),
    ))
}

/// Writes `rows` to `path` as a single checksummed run frame — the
/// incremental engine's frozen day-delta format.
///
/// Unlike [`SegmentWriter`] this writes rows in exactly the given order
/// (the caller persists the canonical merged day slice, already sorted)
/// and the whole file is one frame, so a checkpoint day file is
/// self-describing: magic + row count + chain checksum, then the rows.
pub fn write_checkpoint_segment(path: &Path, rows: &[RequestRecord]) -> Result<(), SpillError> {
    let mut frame = Vec::with_capacity(RUN_HEADER_BYTES + rows.len() * SPILL_ROW_BYTES);
    frame.extend_from_slice(&RUN_MAGIC.to_le_bytes());
    frame.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    frame.extend_from_slice(&[0u8; 8]); // checksum patched below
    let mut buf = [0u8; SPILL_ROW_BYTES];
    let mut checksum = CHECKSUM_SEED;
    for r in rows {
        encode_row(r, &mut buf);
        checksum = stable_hash64(checksum, &buf);
        frame.extend_from_slice(&buf);
    }
    frame[12..20].copy_from_slice(&checksum.to_le_bytes());
    let mut f = File::create(path).map_err(|e| SpillError::io(path, IoOp::Create, &e))?;
    f.write_all(&frame)
        .map_err(|e| SpillError::io(path, IoOp::Write, &e))?;
    f.sync_all()
        .map_err(|e| SpillError::io(path, IoOp::Flush, &e))?;
    Ok(())
}

/// Reads one checkpoint day file written by [`write_checkpoint_segment`],
/// verifying the length framing and chain checksum. Torn, truncated or
/// padded files surface as [`SpillError::Corrupt`], never as silently
/// wrong rows.
pub fn read_checkpoint_segment(path: &Path) -> Result<Vec<RequestRecord>, SpillError> {
    let corrupt = |offset: u64, reason: String| SpillError::Corrupt {
        path: path.to_path_buf(),
        run: 0,
        offset,
        reason,
    };
    let file = File::open(path).map_err(|e| SpillError::io(path, IoOp::Open, &e))?;
    let file_len = file
        .metadata()
        .map_err(|e| SpillError::io(path, IoOp::Open, &e))?
        .len();
    let mut reader = BufReader::new(file);
    let read_err = |e: std::io::Error, offset: u64| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            corrupt(offset, "unexpected end of file (torn write?)".into())
        } else {
            SpillError::io(path, IoOp::Read, &e)
        }
    };
    let mut hdr = [0u8; RUN_HEADER_BYTES];
    reader.read_exact(&mut hdr).map_err(|e| read_err(e, 0))?;
    let magic = le_u32(&hdr[0..4]);
    if magic != RUN_MAGIC {
        return Err(corrupt(0, format!("bad run magic {magic:#010x}")));
    }
    let rows = le_u64(&hdr[4..12]);
    let expected_checksum = le_u64(&hdr[12..20]);
    // Validate the framed length against the file before trusting the
    // header's row count with an allocation.
    let framed_len = RUN_HEADER_BYTES as u128 + rows as u128 * SPILL_ROW_BYTES as u128;
    if framed_len != u128::from(file_len) {
        return Err(corrupt(
            4,
            format!("header claims {rows} rows ({framed_len} bytes) but file is {file_len} bytes"),
        ));
    }
    let mut out = Vec::with_capacity(rows as usize);
    let mut buf = [0u8; SPILL_ROW_BYTES];
    let mut checksum = CHECKSUM_SEED;
    for row in 0..rows {
        let row_offset = RUN_HEADER_BYTES as u64 + row * SPILL_ROW_BYTES as u64;
        reader
            .read_exact(&mut buf)
            .map_err(|e| read_err(e, row_offset))?;
        checksum = stable_hash64(checksum, &buf);
        let rec = decode_row(&buf)
            .map_err(|tag| corrupt(row_offset + 12, format!("unknown family tag {tag}")))?;
        out.push(rec);
    }
    if checksum != expected_checksum {
        return Err(corrupt(
            0,
            format!(
                "run checksum mismatch: computed {checksum:#018x}, expected \
                 {expected_checksum:#018x}"
            ),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDate;

    fn rec(user: u64, sec: u32, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: Timestamp::from_secs(SimDate::ymd(4, 13).start().secs() + sec),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn row_codec_round_trips_both_families() {
        let mut buf = [0u8; SPILL_ROW_BYTES];
        for r in [
            rec(7, 0, "2001:db8::1"),
            rec(u64::MAX, 3, "10.0.0.1"),
            rec(0, 86_400, "::"),
            rec(1, 12, "255.255.255.255"),
        ] {
            encode_row(&r, &mut buf);
            assert_eq!(decode_row(&buf), Ok(r));
        }
    }

    #[test]
    fn corrupt_tag_is_a_typed_error_not_a_panic() {
        let mut buf = [0u8; SPILL_ROW_BYTES];
        encode_row(&rec(1, 0, "10.0.0.1"), &mut buf);
        buf[12] = 9;
        assert_eq!(decode_row(&buf), Err(9));
    }

    #[test]
    fn checkpoint_segment_round_trips_in_order() {
        let dir = std::env::temp_dir().join(format!("ipv6-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("day-roundtrip.seg");
        // Deliberately NOT timestamp-sorted: the checkpoint codec must
        // preserve the caller's order exactly.
        let rows = vec![
            rec(3, 9, "2001:db8::3"),
            rec(1, 0, "10.0.0.1"),
            rec(2, 9, "2001:db8::2"),
        ];
        write_checkpoint_segment(&path, &rows).unwrap();
        assert_eq!(read_checkpoint_segment(&path).unwrap(), rows);

        write_checkpoint_segment(&path, &[]).unwrap();
        assert_eq!(read_checkpoint_segment(&path).unwrap(), Vec::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_segment_detects_corruption_truncation_and_padding() {
        let dir = std::env::temp_dir().join(format!("ipv6-ckpt-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("day-corrupt.seg");
        let rows = vec![rec(1, 0, "10.0.0.1"), rec(2, 1, "2001:db8::2")];
        write_checkpoint_segment(&path, &rows).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flipped payload byte -> checksum mismatch.
        let mut bad = good.clone();
        bad[RUN_HEADER_BYTES + 3] ^= 0xA5;
        std::fs::write(&path, &bad).unwrap();
        match read_checkpoint_segment(&path).unwrap_err() {
            SpillError::Corrupt { reason, .. } => assert!(reason.contains("checksum mismatch")),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Torn write -> length framing failure, not an allocation guess.
        std::fs::write(&path, &good[..good.len() - 7]).unwrap();
        match read_checkpoint_segment(&path).unwrap_err() {
            SpillError::Corrupt { reason, .. } => assert!(reason.contains("but file is")),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Trailing garbage is also a framing failure.
        let mut padded = good.clone();
        padded.extend_from_slice(&[0u8; 5]);
        std::fs::write(&path, &padded).unwrap();
        assert!(matches!(
            read_checkpoint_segment(&path).unwrap_err(),
            SpillError::Corrupt { .. }
        ));

        // Bad magic.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(&path, &bad_magic).unwrap();
        match read_checkpoint_segment(&path).unwrap_err() {
            SpillError::Corrupt { reason, .. } => assert!(reason.contains("bad run magic")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An on-disk bad tag reports path + run index + byte offset through
    /// the typed error (the old code aborted with no location).
    #[test]
    fn corrupt_tag_on_disk_reports_path_run_and_offset() {
        let session = SpillSession::create(None).unwrap();
        let mut w = session.writer(0, 0, "request", 2);
        for r in [
            rec(1, 0, "10.0.0.1"),
            rec(2, 1, "10.0.0.2"),
            rec(3, 2, "10.0.0.3"),
        ] {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        let m = w.into_manifest();
        // Flip the second run's first row tag (run 1 starts after the
        // first 2-row frame).
        let run1_offset = (RUN_HEADER_BYTES + 2 * SPILL_ROW_BYTES) as u64;
        let tag_offset = run1_offset + RUN_HEADER_BYTES as u64 + 12;
        let mut bytes = std::fs::read(&m.path).unwrap();
        bytes[tag_offset as usize] = 9;
        std::fs::write(&m.path, &bytes).unwrap();

        let err = read_manifest(&m, |_| {}).unwrap_err();
        match err {
            SpillError::Corrupt {
                path,
                run,
                offset,
                reason,
            } => {
                assert_eq!(path, m.path);
                assert_eq!(run, 1);
                assert_eq!(offset, tag_offset);
                assert!(reason.contains("unknown family tag 9"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert_eq!(session.stats().checksum_failures, 1);
    }

    #[test]
    fn flipped_payload_byte_fails_the_run_checksum() {
        let session = SpillSession::create(None).unwrap();
        let mut w = session.writer(0, 0, "request", 64);
        for i in 0..10u64 {
            w.push(rec(i, i as u32, "2001:db8::1")).unwrap();
        }
        w.finish().unwrap();
        let m = w.into_manifest();
        let mut bytes = std::fs::read(&m.path).unwrap();
        // Flip a non-tag payload byte: the chain checksum must catch it.
        let target = RUN_HEADER_BYTES + 3 * SPILL_ROW_BYTES + 5;
        bytes[target] ^= 0xFF;
        std::fs::write(&m.path, &bytes).unwrap();

        let err = read_manifest(&m, |_| {}).unwrap_err();
        assert!(
            matches!(err, SpillError::Corrupt { run: 0, ref reason, .. }
                if reason.contains("checksum mismatch")),
            "{err:?}"
        );
        // The merge path detects it too.
        let tables = Arc::new(EntityTables::default());
        let err = merge_manifests(std::slice::from_ref(&m), &tables).unwrap_err();
        assert!(matches!(err, SpillError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn truncated_file_is_reported_as_torn_write() {
        let session = SpillSession::create(None).unwrap();
        let mut w = session.writer(0, 0, "request", 64);
        for i in 0..8u64 {
            w.push(rec(i, i as u32, "10.0.0.1")).unwrap();
        }
        w.finish().unwrap();
        let m = w.into_manifest();
        let bytes = std::fs::read(&m.path).unwrap();
        std::fs::write(&m.path, &bytes[..bytes.len() - 10]).unwrap();

        let err = read_manifest(&m, |_| {}).unwrap_err();
        assert!(
            matches!(err, SpillError::Corrupt { ref reason, .. }
                if reason.contains("torn write")),
            "{err:?}"
        );
    }

    #[test]
    fn merge_reproduces_the_stable_in_memory_sort() {
        let session = SpillSession::create(None).unwrap();
        // Two "shards", ties across and within both; segment_rows 3 forces
        // multiple runs per shard.
        let shard_a = vec![
            rec(1, 10, "2001:db8::1"),
            rec(2, 5, "2001:db8::2"),
            rec(3, 10, "10.0.0.1"), // ties with user 1
            rec(4, 1, "2001:db8::3"),
            rec(5, 10, "2001:db8::4"), // crosses a run boundary
        ];
        let shard_b = vec![rec(6, 10, "10.0.0.2"), rec(7, 0, "2001:db8::5")];

        let mut manifests = Vec::new();
        for (shard, records) in [(0usize, &shard_a), (1usize, &shard_b)] {
            let mut w = session.writer(shard, 0, "request", 3);
            for &r in records {
                w.push(r).unwrap();
            }
            w.finish().unwrap();
            manifests.push(w.into_manifest());
        }
        assert_eq!(manifests[0].run_count(), 2);
        assert_eq!(manifests[0].rows(), 5);

        // Reference: the in-memory pipeline (concatenate in plan order,
        // stable sort).
        let mut reference = RequestStore::new();
        for &r in shard_a.iter().chain(shard_b.iter()) {
            reference.push(r);
        }

        let mut keys = KeyCollector::new();
        for m in &manifests {
            keys.add_manifest(m).unwrap();
        }
        let tables = Arc::new(keys.into_tables());
        let frozen = merge_into_frozen(&manifests, &tables).unwrap();
        assert_eq!(
            frozen.all().records().collect::<Vec<_>>(),
            reference.all(),
            "k-way merge must equal the stable concatenation sort"
        );
        // Spill-built columns are exactly sized (the bytes() contract).
        assert_eq!(frozen.bytes(), frozen.len() * 18);
        // Both verified read passes counted their payload bytes.
        assert_eq!(
            session.stats().bytes_verified,
            2 * 7 * SPILL_ROW_BYTES as u64
        );
        assert_eq!(session.stats().checksum_failures, 0);
    }

    /// Empty manifests (zero-record shards) pass cleanly through the
    /// k-way merge next to populated ones — the empty-segment edge.
    #[test]
    fn empty_manifests_merge_with_populated_ones() {
        let session = SpillSession::create(None).unwrap();
        let mut empty_a = session.writer(0, 0, "abuse", 4);
        empty_a.finish().unwrap();
        let empty_a = empty_a.into_manifest();
        let mut populated = session.writer(1, 0, "abuse", 2);
        let records = [rec(1, 5, "10.0.0.1"), rec(2, 3, "2001:db8::1")];
        for &r in &records {
            populated.push(r).unwrap();
        }
        populated.finish().unwrap();
        let populated = populated.into_manifest();
        let mut empty_b = session.writer(2, 0, "abuse", 4);
        empty_b.finish().unwrap();
        let empty_b = empty_b.into_manifest();

        let mut keys = KeyCollector::new();
        for m in [&empty_a, &populated, &empty_b] {
            keys.add_manifest(m).unwrap();
        }
        let tables = Arc::new(keys.into_tables());
        let all = [empty_a, populated.clone(), empty_b];
        let merged = merge_into_frozen(&all, &tables).unwrap();
        let alone = merge_into_frozen(std::slice::from_ref(&populated), &tables).unwrap();
        assert_eq!(
            merged.all().records().collect::<Vec<_>>(),
            alone.all().records().collect::<Vec<_>>(),
            "empty manifests must not perturb the merge"
        );
        assert_eq!(merged.len(), 2);

        // All-empty merges are an empty store.
        let tables = Arc::new(EntityTables::default());
        assert!(merge_manifests(&[], &tables).unwrap().is_empty());
    }

    #[test]
    fn injected_write_faults_retry_to_identical_bytes() {
        let records: Vec<RequestRecord> = (0..50)
            .map(|i| rec(i, (i % 7) as u32, "2001:db8::1"))
            .collect();
        let write = |policy: SpillPolicy| {
            let session = SpillSession::create_with(None, policy).unwrap();
            let mut w = session.writer(4, 1, "request", 8);
            for &r in &records {
                w.push(r).unwrap();
            }
            w.finish().unwrap();
            let m = w.into_manifest();
            let bytes = std::fs::read(&m.path).unwrap();
            (bytes, session.stats())
        };
        let (clean, clean_stats) = write(SpillPolicy::default());
        assert_eq!(clean_stats.io_retries, 0);
        let (faulted, faulted_stats) = write(SpillPolicy {
            faults: Some(SpillFaultPlan {
                seed: 99,
                write_fail_rate: 0.9,
                short_write_rate: 0.5,
                fail_attempts: 1,
                ..SpillFaultPlan::default()
            }),
            ..SpillPolicy::default()
        });
        assert!(faulted_stats.io_retries > 0, "faults must have fired");
        assert_eq!(clean, faulted, "retried writes must be byte-identical");
    }

    #[test]
    fn injected_read_faults_retry_transparently() {
        let policy = SpillPolicy {
            faults: Some(SpillFaultPlan {
                seed: 7,
                read_fail_rate: 0.6,
                fail_attempts: 1,
                ..SpillFaultPlan::default()
            }),
            ..SpillPolicy::default()
        };
        let session = SpillSession::create_with(None, policy).unwrap();
        let mut w = session.writer(0, 0, "request", 4);
        let records: Vec<RequestRecord> = (0..20).map(|i| rec(i, i as u32, "10.0.0.1")).collect();
        for &r in &records {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
        let m = w.into_manifest();
        let mut seen = Vec::new();
        read_manifest(&m, |r| seen.push(r)).unwrap();
        assert_eq!(seen.len(), records.len());
        assert!(
            session.stats().io_retries > 0,
            "read faults must have fired"
        );
    }

    #[test]
    fn exhausted_retry_budget_surfaces_a_typed_io_error() {
        let policy = SpillPolicy {
            max_io_retries: 1,
            faults: Some(SpillFaultPlan {
                seed: 3,
                write_fail_rate: 1.0,
                fail_attempts: u32::MAX, // never recovers
                ..SpillFaultPlan::default()
            }),
            ..SpillPolicy::default()
        };
        let session = SpillSession::create_with(None, policy).unwrap();
        let mut w = session.writer(0, 0, "request", 2);
        w.push(rec(1, 0, "10.0.0.1")).unwrap();
        let err = w.push(rec(2, 1, "10.0.0.1")).unwrap_err();
        assert!(
            matches!(err, SpillError::Io { op: IoOp::Write, kind, .. }
                if kind == std::io::ErrorKind::Interrupted),
            "{err:?}"
        );
        assert!(err.is_retryable());
    }

    #[test]
    fn disk_budget_is_enforced_and_released_by_remove_attempt() {
        let frame = (RUN_HEADER_BYTES + 2 * SPILL_ROW_BYTES) as u64;
        let policy = SpillPolicy {
            disk_budget_bytes: Some(frame), // exactly one 2-row frame
            ..SpillPolicy::default()
        };
        let session = SpillSession::create_with(None, policy).unwrap();
        let mut w = session.writer(0, 0, "request", 2);
        w.push(rec(1, 0, "10.0.0.1")).unwrap();
        w.push(rec(2, 1, "10.0.0.1")).unwrap(); // first frame fits
        assert_eq!(session.stats().bytes_written, frame);
        w.push(rec(3, 2, "10.0.0.1")).unwrap();
        let err = w.push(rec(4, 3, "10.0.0.1")).unwrap_err();
        assert!(
            matches!(err, SpillError::Budget { budget_bytes, attempted_bytes }
                if budget_bytes == frame && attempted_bytes == 2 * frame),
            "{err:?}"
        );
        assert!(!err.is_retryable(), "budget overruns are not transient");
        drop(w);
        session.remove_attempt(0, 0);
        assert_eq!(
            session.stats().bytes_written,
            0,
            "removed files release their budget"
        );
    }

    #[test]
    fn key_collector_matches_in_memory_table_build() {
        let records: Vec<RequestRecord> = (0..500)
            .map(|i| {
                rec(
                    i % 37,
                    i as u32,
                    if i % 3 == 0 {
                        "192.0.2.9"
                    } else {
                        "2001:db8:9::1"
                    },
                )
            })
            .collect();
        let mut store = RequestStore::new();
        let mut keys = KeyCollector::new();
        for &r in &records {
            store.push(r);
            keys.add(&r);
        }
        let direct = EntityTables::build(store.iter_unordered());
        assert_eq!(keys.into_tables(), direct);
    }

    #[test]
    fn session_cleans_up_on_drop_and_remove_attempt_is_selective() {
        let parent = std::env::temp_dir().join(format!("ipv6-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&parent).unwrap();
        let dir;
        {
            let session = SpillSession::create(Some(&parent)).unwrap();
            dir = session.dir().to_path_buf();
            let mut a0 = session.writer(3, 0, "pair", 2);
            a0.push(rec(1, 0, "10.0.0.1")).unwrap();
            a0.finish().unwrap();
            let _ = a0.into_manifest();
            let mut a1 = session.writer(3, 1, "pair", 2);
            a1.push(rec(1, 0, "10.0.0.1")).unwrap();
            a1.finish().unwrap();
            let _ = a1.into_manifest();
            assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
            session.remove_attempt(3, 0);
            let left: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            assert_eq!(left, vec!["s00003-a01-pair.seg".to_string()]);
        }
        assert!(!dir.exists(), "session dir removed on drop");
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn empty_family_writes_no_file() {
        let session = SpillSession::create(None).unwrap();
        let mut w = session.writer(0, 0, "abuse", 64);
        w.finish().unwrap();
        let m = w.into_manifest();
        assert_eq!(m.rows(), 0);
        assert_eq!(std::fs::read_dir(session.dir()).unwrap().count(), 0);
        // Merging nothing is an empty store.
        let tables = Arc::new(EntityTables::default());
        assert!(merge_manifests(&[m], &tables).unwrap().is_empty());
    }

    #[test]
    fn gauge_tracks_peak_across_publishers() {
        let g = MemGauge::new();
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        g.publish(&a, 100);
        g.publish(&b, 50);
        assert_eq!(g.current(), 150);
        g.publish(&a, 20); // shrink after a flush
        assert_eq!(g.current(), 70);
        assert_eq!(g.peak(), 150);
        g.release(&b);
        assert_eq!(g.current(), 20);
        assert_eq!(g.peak(), 150, "peak never decreases");
    }

    #[test]
    fn storage_mode_helpers() {
        assert_eq!(StorageMode::default(), StorageMode::InMemory);
        assert_eq!(StorageMode::InMemory.label(), "memory");
        let s = StorageMode::spill();
        assert!(s.is_spill());
        assert_eq!(s.label(), "spill");
        assert_eq!(
            s,
            StorageMode::Spill {
                dir: None,
                segment_rows: DEFAULT_SEGMENT_ROWS
            }
        );
    }
}
