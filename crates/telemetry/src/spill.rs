//! Out-of-core segment storage: bounded spill of request streams to disk.
//!
//! The in-memory pipeline holds every retained record as a 40-byte
//! [`RequestRecord`] until the driver's sort phase — O(records) peak
//! memory, which caps the simulable population. This module removes that
//! floor: a shard's sink can stream each dataset family into a
//! [`SegmentWriter`] that stages at most `segment_rows` records, stable-
//! sorts each full segment by timestamp, and appends it to a per-family
//! spill file as one **sorted run**. After the sim phase, the driver
//! rebuilds the exact in-memory byte order with a k-way merge over all
//! runs ([`merge_manifests`]) — no record is ever re-buffered wholesale.
//!
//! # Determinism (merge-by-concatenation)
//!
//! The in-memory pipeline's final order is a *stable* sort by timestamp
//! of the shard outputs concatenated in plan order; ties resolve by
//! emission order. Spill reproduces it exactly:
//!
//! 1. within a run, the staging buffer is stable-sorted, so equal
//!    timestamps keep emission order;
//! 2. runs partition a shard's emission stream contiguously, and
//!    manifests are merged in plan order, so a global run index is
//!    order-isomorphic to "position in the concatenated stream";
//! 3. the k-way merge pops by `(timestamp, run index)`, which is exactly
//!    the stable sort's tie-break.
//!
//! The merge phase itself moves no records between files — shard
//! manifests simply concatenate in plan order ("merge-by-concatenation");
//! all inter-run ordering is deferred to the single streaming pass that
//! encodes rows into the columnar stores.
//!
//! # Fault safety
//!
//! Spill I/O errors panic, which the driver's per-shard `catch_unwind`
//! converts into an ordinary shard failure (retry/degrade/abort per
//! policy). A failed attempt's partial files are deleted by
//! [`SpillSession::remove_attempt`]; the whole session directory is
//! removed when the [`SpillSession`] drops.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::net::IpAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::columns::ColumnStore;
use crate::ids::{Asn, Country, UserId};
use crate::intern::{EntityTables, IpTable, UserTable};
use crate::record::RequestRecord;
use crate::store::{FrozenStore, RequestStore};
use crate::time::Timestamp;

/// Default rows staged per spill segment. Chosen so a shard's staging
/// buffers stay a few megabytes across all dataset families while keeping
/// the per-family run count (one merge cursor each) well under typical
/// file-descriptor limits.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// Bytes of one encoded spill row: timestamp (4) + user (8) + family tag
/// (1) + address (16, IPv4 in the first four bytes) + ASN (4) +
/// country (2).
pub const SPILL_ROW_BYTES: usize = 35;

/// Where a study keeps its full-fidelity and sampled streams during the
/// sim phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageMode {
    /// Every retained record stays in memory until the sort phase — the
    /// original pipeline. Peak memory is O(retained records).
    #[default]
    InMemory,
    /// Shards stream every dataset family into bounded sorted segments on
    /// disk; peak memory is O(`segment_rows` × families × worker threads),
    /// independent of the population.
    Spill {
        /// Parent directory for the per-run spill session directory;
        /// `None` uses [`std::env::temp_dir`]. The session directory is
        /// removed when the run completes (or fails).
        dir: Option<PathBuf>,
        /// Rows staged in memory per family before a segment is sorted
        /// and appended to disk as one run. Must be non-zero.
        segment_rows: usize,
    },
}

impl StorageMode {
    /// The spill mode with default parameters (temp dir,
    /// [`DEFAULT_SEGMENT_ROWS`]).
    pub fn spill() -> Self {
        StorageMode::Spill {
            dir: None,
            segment_rows: DEFAULT_SEGMENT_ROWS,
        }
    }

    /// Whether this mode spills to disk.
    pub fn is_spill(&self) -> bool {
        matches!(self, StorageMode::Spill { .. })
    }

    /// Short machine-readable label (`"memory"` / `"spill"`), echoed into
    /// run reports.
    pub fn label(&self) -> &'static str {
        match self {
            StorageMode::InMemory => "memory",
            StorageMode::Spill { .. } => "spill",
        }
    }
}

/// A shared high-water-mark gauge over the mutable (row-format) bytes the
/// sim phase holds in memory: shard-local in-memory stores plus spill
/// staging buffers. Frozen columnar output, intern tables, and merge
/// cursors are excluded — the gauge measures what *scales with work in
/// flight*, which is what the out-of-core pipeline bounds.
#[derive(Debug, Default)]
pub struct MemGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemGauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a sink's current byte count: adjusts the shared total by
    /// the delta against what this sink last published (tracked in
    /// `published`, one counter per shard attempt) and raises the peak.
    pub fn publish(&self, published: &AtomicU64, now: u64) {
        let prev = published.swap(now, Ordering::Relaxed);
        let cur = if now >= prev {
            self.current.fetch_add(now - prev, Ordering::Relaxed) + (now - prev)
        } else {
            self.current.fetch_sub(prev - now, Ordering::Relaxed) - (prev - now)
        };
        self.peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Releases everything an attempt had published — called when the
    /// attempt panics and its buffers are discarded by the unwind.
    pub fn release(&self, published: &AtomicU64) {
        let prev = published.swap(0, Ordering::Relaxed);
        self.current.fetch_sub(prev, Ordering::Relaxed);
    }

    /// The current published total.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The high-water mark across the run so far.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Encodes one record into the fixed 35-byte spill row format.
fn encode_row(r: &RequestRecord, buf: &mut [u8; SPILL_ROW_BYTES]) {
    buf[0..4].copy_from_slice(&r.ts.secs().to_le_bytes());
    buf[4..12].copy_from_slice(&r.user.raw().to_le_bytes());
    match r.ip {
        IpAddr::V4(a) => {
            buf[12] = 4;
            buf[13..17].copy_from_slice(&u32::from(a).to_le_bytes());
            buf[17..29].fill(0);
        }
        IpAddr::V6(a) => {
            buf[12] = 6;
            buf[13..29].copy_from_slice(&u128::from(a).to_le_bytes());
        }
    }
    buf[29..33].copy_from_slice(&r.asn.0.to_le_bytes());
    buf[33..35].copy_from_slice(&r.country.0);
}

/// Decodes one 35-byte spill row back into a record.
fn decode_row(buf: &[u8; SPILL_ROW_BYTES]) -> RequestRecord {
    let ts = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let user = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    let ip = match buf[12] {
        4 => IpAddr::V4(std::net::Ipv4Addr::from(u32::from_le_bytes(
            buf[13..17].try_into().expect("4 bytes"),
        ))),
        6 => IpAddr::V6(std::net::Ipv6Addr::from(u128::from_le_bytes(
            buf[13..29].try_into().expect("16 bytes"),
        ))),
        tag => panic!("corrupt spill row: unknown family tag {tag}"),
    };
    let asn = u32::from_le_bytes(buf[29..33].try_into().expect("4 bytes"));
    RequestRecord {
        ts: Timestamp::from_secs(ts),
        user: UserId(user),
        ip,
        asn: Asn(asn),
        country: Country([buf[33], buf[34]]),
    }
}

/// Monotonic discriminator so concurrent sessions in one process never
/// collide on a directory name.
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One run's private spill directory. Files are created lazily by
/// [`SegmentWriter`]s; the directory (and everything in it) is removed on
/// drop, so a completed — or aborted — run leaves nothing behind.
#[derive(Debug)]
pub struct SpillSession {
    dir: PathBuf,
}

impl SpillSession {
    /// Creates a fresh, uniquely-named session directory under `parent`
    /// (or the system temp dir).
    pub fn create(parent: Option<&Path>) -> std::io::Result<Self> {
        let parent = parent
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let n = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = parent.join(format!("ipv6-spill-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filename prefix shared by every file of one shard attempt.
    fn attempt_prefix(shard: usize, attempt: u32) -> String {
        format!("s{shard:05}-a{attempt:02}-")
    }

    /// A segment writer for one `(shard, attempt, family)` stream.
    pub fn writer(
        &self,
        shard: usize,
        attempt: u32,
        family: &str,
        segment_rows: usize,
    ) -> SegmentWriter {
        let name = format!("{}{family}.seg", Self::attempt_prefix(shard, attempt));
        SegmentWriter::new(self.dir.join(name), segment_rows)
    }

    /// Best-effort removal of every file a failed attempt wrote, so a
    /// retried shard starts from a clean directory and a completed run
    /// holds only the files of successful attempts.
    pub fn remove_attempt(&self, shard: usize, attempt: u32) {
        let prefix = Self::attempt_prefix(shard, attempt);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

impl Drop for SpillSession {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Where one family's spilled stream lives: its file plus the row count
/// of each sorted run, in emission order.
#[derive(Debug, Clone)]
pub struct RunManifest {
    path: PathBuf,
    runs: Vec<u64>,
}

impl RunManifest {
    /// Total rows across all runs.
    pub fn rows(&self) -> u64 {
        self.runs.iter().sum()
    }

    /// Number of sorted runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

/// Streams one family's records into bounded sorted runs on disk.
///
/// Records are staged in memory; when the staging buffer reaches
/// `segment_rows` it is stable-sorted by timestamp and appended to the
/// file as one run. The file is created lazily on the first flush, so
/// record-free families cost nothing.
///
/// # Panics
/// Any I/O failure panics; the driver's per-shard `catch_unwind` turns
/// that into a normal shard failure handled by the run's failure policy.
#[derive(Debug)]
pub struct SegmentWriter {
    path: PathBuf,
    file: Option<BufWriter<File>>,
    staging: Vec<RequestRecord>,
    segment_rows: usize,
    runs: Vec<u64>,
}

impl SegmentWriter {
    fn new(path: PathBuf, segment_rows: usize) -> Self {
        assert!(segment_rows > 0, "segment_rows must be non-zero");
        Self {
            path,
            file: None,
            staging: Vec::new(),
            segment_rows,
            runs: Vec::new(),
        }
    }

    /// Appends one record, flushing a full segment to disk.
    pub fn push(&mut self, rec: RequestRecord) {
        self.staging.push(rec);
        if self.staging.len() >= self.segment_rows {
            self.flush_run();
        }
    }

    /// Bytes currently staged in memory (logical row bytes, the unit the
    /// [`MemGauge`] tracks).
    pub fn staged_bytes(&self) -> u64 {
        (self.staging.len() * std::mem::size_of::<RequestRecord>()) as u64
    }

    /// Sorts and appends the staged records as one run.
    fn flush_run(&mut self) {
        if self.staging.is_empty() {
            return;
        }
        // Stable: equal timestamps keep emission order, exactly like the
        // in-memory store's final sort.
        self.staging.sort_by_key(|r| r.ts);
        let file = match self.file.as_mut() {
            Some(f) => f,
            None => {
                let f = File::create(&self.path)
                    .unwrap_or_else(|e| panic!("spill create {} failed: {e}", self.path.display()));
                self.file.insert(BufWriter::new(f))
            }
        };
        let mut buf = [0u8; SPILL_ROW_BYTES];
        for r in &self.staging {
            encode_row(r, &mut buf);
            file.write_all(&buf)
                .unwrap_or_else(|e| panic!("spill write {} failed: {e}", self.path.display()));
        }
        self.runs.push(self.staging.len() as u64);
        self.staging.clear();
    }

    /// Flushes the final partial run and the OS buffer. Idempotent.
    pub fn finish(&mut self) {
        self.flush_run();
        if let Some(f) = self.file.as_mut() {
            f.flush()
                .unwrap_or_else(|e| panic!("spill flush {} failed: {e}", self.path.display()));
        }
    }

    /// Consumes the writer into its manifest; [`SegmentWriter::finish`]
    /// must have been called (asserted).
    pub fn into_manifest(mut self) -> RunManifest {
        assert!(self.staging.is_empty(), "into_manifest before finish()");
        if let Some(f) = self.file.take() {
            drop(f);
        }
        RunManifest {
            path: self.path,
            runs: self.runs,
        }
    }
}

/// Reads an entire manifest sequentially (run after run, i.e. file
/// order), feeding each decoded record to `f`. Used for the key-collection
/// pass, where order is irrelevant.
pub fn read_manifest(m: &RunManifest, mut f: impl FnMut(RequestRecord)) {
    if m.runs.is_empty() {
        return;
    }
    let file = File::open(&m.path)
        .unwrap_or_else(|e| panic!("spill open {} failed: {e}", m.path.display()));
    let mut reader = BufReader::new(file);
    let mut buf = [0u8; SPILL_ROW_BYTES];
    for _ in 0..m.rows() {
        reader
            .read_exact(&mut buf)
            .unwrap_or_else(|e| panic!("spill read {} failed: {e}", m.path.display()));
        f(decode_row(&buf));
    }
}

/// Accumulates the distinct entity keys of a record stream with periodic
/// sort+dedup compaction, then builds the shared [`EntityTables`].
///
/// `EntityTables` construction is order-independent given the same key
/// sets (sort + dedup erase arrival order), so tables built here over
/// spilled streams are bit-identical to tables built in memory over the
/// same records — the linchpin of spill-mode determinism.
#[derive(Debug, Default)]
pub struct KeyCollector {
    v4: Vec<u32>,
    v6: Vec<u128>,
    users: Vec<u64>,
    compact_at: usize,
}

/// Compaction floor: below this many buffered keys, dedup isn't worth it.
const COMPACT_FLOOR: usize = 1 << 20;

impl KeyCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self {
            compact_at: COMPACT_FLOOR,
            ..Self::default()
        }
    }

    /// Adds one record's keys.
    pub fn add(&mut self, rec: &RequestRecord) {
        match rec.ip {
            IpAddr::V4(a) => self.v4.push(u32::from(a)),
            IpAddr::V6(a) => self.v6.push(u128::from(a)),
        }
        self.users.push(rec.user.raw());
        if self.v4.len() + self.v6.len() + self.users.len() > self.compact_at {
            self.compact();
        }
    }

    /// Adds every record of an in-memory store.
    pub fn add_store(&mut self, store: &RequestStore) {
        for r in store.iter_unordered() {
            self.add(r);
        }
    }

    /// Adds every record of a spilled manifest (sequential read).
    pub fn add_manifest(&mut self, m: &RunManifest) {
        let mut keys = std::mem::take(self);
        read_manifest(m, |rec| keys.add(&rec));
        *self = keys;
    }

    fn compact(&mut self) {
        self.v4.sort_unstable();
        self.v4.dedup();
        self.v6.sort_unstable();
        self.v6.dedup();
        self.users.sort_unstable();
        self.users.dedup();
        let len = self.v4.len() + self.v6.len() + self.users.len();
        self.compact_at = (len * 2).max(COMPACT_FLOOR);
    }

    /// Builds the shared intern tables from the collected keys.
    pub fn into_tables(self) -> EntityTables {
        EntityTables {
            ips: IpTable::from_keys(self.v4, self.v6),
            users: UserTable::from_keys(self.users),
        }
    }
}

/// One run's streaming read cursor for the k-way merge.
struct RunCursor {
    reader: BufReader<File>,
    remaining: u64,
    path: PathBuf,
}

impl RunCursor {
    fn open(path: &Path, start_row: u64, rows: u64) -> Self {
        let mut file = File::open(path)
            .unwrap_or_else(|e| panic!("spill open {} failed: {e}", path.display()));
        file.seek(SeekFrom::Start(start_row * SPILL_ROW_BYTES as u64))
            .unwrap_or_else(|e| panic!("spill seek {} failed: {e}", path.display()));
        Self {
            reader: BufReader::new(file),
            remaining: rows,
            path: path.to_path_buf(),
        }
    }

    fn next(&mut self) -> Option<RequestRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut buf = [0u8; SPILL_ROW_BYTES];
        self.reader
            .read_exact(&mut buf)
            .unwrap_or_else(|e| panic!("spill read {} failed: {e}", self.path.display()));
        Some(decode_row(&buf))
    }
}

/// K-way merges one family's manifests (in plan order) into a timestamp-
/// sorted columnar store encoded against shared intern tables.
///
/// Ties pop by global run index (manifest order × run order), which is
/// exactly the stable tie-break of the in-memory pipeline's sort over the
/// plan-order concatenation — so the output columns are byte-identical to
/// the in-memory path. One cursor (file handle + small read buffer) is
/// open per run; no run is ever re-buffered wholesale.
pub fn merge_manifests(manifests: &[RunManifest], tables: &Arc<EntityTables>) -> ColumnStore {
    let mut cursors: Vec<RunCursor> = Vec::new();
    let mut total_rows: usize = 0;
    for m in manifests {
        let mut start = 0u64;
        for &rows in &m.runs {
            if rows > 0 {
                cursors.push(RunCursor::open(&m.path, start, rows));
                total_rows += rows as usize;
            }
            start += rows;
        }
    }
    let mut cols = ColumnStore::default();
    cols.ts.reserve_exact(total_rows);
    cols.ip.reserve_exact(total_rows);
    cols.user.reserve_exact(total_rows);
    cols.asn.reserve_exact(total_rows);
    cols.country.reserve_exact(total_rows);

    // Min-heap keyed (timestamp, run index); `current[i]` holds cursor
    // `i`'s front record.
    let mut current: Vec<RequestRecord> = Vec::with_capacity(cursors.len());
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> =
        BinaryHeap::with_capacity(cursors.len());
    for (i, c) in cursors.iter_mut().enumerate() {
        let r = c.next().expect("runs are non-empty by construction");
        heap.push(std::cmp::Reverse((r.ts.secs(), i)));
        current.push(r);
    }
    while let Some(std::cmp::Reverse((_, i))) = heap.pop() {
        cols.push_encoded(&current[i], tables);
        if let Some(r) = cursors[i].next() {
            heap.push(std::cmp::Reverse((r.ts.secs(), i)));
            current[i] = r;
        }
    }
    debug_assert_eq!(cols.len(), total_rows);
    cols
}

/// Convenience: merges one family's manifests straight into a
/// [`FrozenStore`] over shared tables.
pub fn merge_into_frozen(manifests: &[RunManifest], tables: &Arc<EntityTables>) -> FrozenStore {
    FrozenStore::from_sorted_parts(merge_manifests(manifests, tables), Arc::clone(tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDate;

    fn rec(user: u64, sec: u32, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: Timestamp::from_secs(SimDate::ymd(4, 13).start().secs() + sec),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn row_codec_round_trips_both_families() {
        let mut buf = [0u8; SPILL_ROW_BYTES];
        for r in [
            rec(7, 0, "2001:db8::1"),
            rec(u64::MAX, 3, "10.0.0.1"),
            rec(0, 86_400, "::"),
            rec(1, 12, "255.255.255.255"),
        ] {
            encode_row(&r, &mut buf);
            assert_eq!(decode_row(&buf), r);
        }
    }

    #[test]
    #[should_panic(expected = "unknown family tag")]
    fn corrupt_tag_panics() {
        let mut buf = [0u8; SPILL_ROW_BYTES];
        encode_row(&rec(1, 0, "10.0.0.1"), &mut buf);
        buf[12] = 9;
        let _ = decode_row(&buf);
    }

    #[test]
    fn merge_reproduces_the_stable_in_memory_sort() {
        let session = SpillSession::create(None).unwrap();
        // Two "shards", ties across and within both; segment_rows 3 forces
        // multiple runs per shard.
        let shard_a = vec![
            rec(1, 10, "2001:db8::1"),
            rec(2, 5, "2001:db8::2"),
            rec(3, 10, "10.0.0.1"), // ties with user 1
            rec(4, 1, "2001:db8::3"),
            rec(5, 10, "2001:db8::4"), // crosses a run boundary
        ];
        let shard_b = vec![rec(6, 10, "10.0.0.2"), rec(7, 0, "2001:db8::5")];

        let mut manifests = Vec::new();
        for (shard, records) in [(0usize, &shard_a), (1usize, &shard_b)] {
            let mut w = session.writer(shard, 0, "request", 3);
            for &r in records {
                w.push(r);
            }
            w.finish();
            manifests.push(w.into_manifest());
        }
        assert_eq!(manifests[0].run_count(), 2);
        assert_eq!(manifests[0].rows(), 5);

        // Reference: the in-memory pipeline (concatenate in plan order,
        // stable sort).
        let mut reference = RequestStore::new();
        for &r in shard_a.iter().chain(shard_b.iter()) {
            reference.push(r);
        }

        let mut keys = KeyCollector::new();
        for m in &manifests {
            keys.add_manifest(m);
        }
        let tables = Arc::new(keys.into_tables());
        let frozen = merge_into_frozen(&manifests, &tables);
        assert_eq!(
            frozen.all().records().collect::<Vec<_>>(),
            reference.all(),
            "k-way merge must equal the stable concatenation sort"
        );
        // Spill-built columns are exactly sized (the bytes() contract).
        assert_eq!(frozen.bytes(), frozen.len() * 18);
    }

    #[test]
    fn key_collector_matches_in_memory_table_build() {
        let records: Vec<RequestRecord> = (0..500)
            .map(|i| {
                rec(
                    i % 37,
                    i as u32,
                    if i % 3 == 0 {
                        "192.0.2.9"
                    } else {
                        "2001:db8:9::1"
                    },
                )
            })
            .collect();
        let mut store = RequestStore::new();
        let mut keys = KeyCollector::new();
        for &r in &records {
            store.push(r);
            keys.add(&r);
        }
        let direct = EntityTables::build(store.iter_unordered());
        assert_eq!(keys.into_tables(), direct);
    }

    #[test]
    fn session_cleans_up_on_drop_and_remove_attempt_is_selective() {
        let parent = std::env::temp_dir().join(format!("ipv6-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&parent).unwrap();
        let dir;
        {
            let session = SpillSession::create(Some(&parent)).unwrap();
            dir = session.dir().to_path_buf();
            let mut a0 = session.writer(3, 0, "pair", 2);
            a0.push(rec(1, 0, "10.0.0.1"));
            a0.finish();
            let _ = a0.into_manifest();
            let mut a1 = session.writer(3, 1, "pair", 2);
            a1.push(rec(1, 0, "10.0.0.1"));
            a1.finish();
            let _ = a1.into_manifest();
            assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
            session.remove_attempt(3, 0);
            let left: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            assert_eq!(left, vec!["s00003-a01-pair.seg".to_string()]);
        }
        assert!(!dir.exists(), "session dir removed on drop");
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn empty_family_writes_no_file() {
        let session = SpillSession::create(None).unwrap();
        let mut w = session.writer(0, 0, "abuse", 64);
        w.finish();
        let m = w.into_manifest();
        assert_eq!(m.rows(), 0);
        assert_eq!(std::fs::read_dir(session.dir()).unwrap().count(), 0);
        // Merging nothing is an empty store.
        let tables = Arc::new(EntityTables::default());
        assert!(merge_manifests(&[m], &tables).is_empty());
    }

    #[test]
    fn gauge_tracks_peak_across_publishers() {
        let g = MemGauge::new();
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        g.publish(&a, 100);
        g.publish(&b, 50);
        assert_eq!(g.current(), 150);
        g.publish(&a, 20); // shrink after a flush
        assert_eq!(g.current(), 70);
        assert_eq!(g.peak(), 150);
        g.release(&b);
        assert_eq!(g.current(), 20);
        assert_eq!(g.peak(), 150, "peak never decreases");
    }

    #[test]
    fn storage_mode_helpers() {
        assert_eq!(StorageMode::default(), StorageMode::InMemory);
        assert_eq!(StorageMode::InMemory.label(), "memory");
        let s = StorageMode::spill();
        assert!(s.is_spill());
        assert_eq!(s.label(), "spill");
        assert_eq!(
            s,
            StorageMode::Spill {
                dir: None,
                segment_rows: DEFAULT_SEGMENT_ROWS
            }
        );
    }
}
