//! Entity identifiers shared across the workspace.
//!
//! Plain newtypes over integers: cheap to copy, hashable, and — critically —
//! hashable *stably* for the deterministic samplers (each id exposes its raw
//! value for [`ipv6_study_stats::hash`]).

use std::fmt;

/// A platform user account id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl UserId {
    /// Raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A client device belonging to a user (phone, laptop, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u64);

impl DeviceId {
    /// Raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A household: the unit behind one home connection (one NAT'd IPv4
/// address, one delegated IPv6 prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HouseholdId(pub u64);

impl HouseholdId {
    /// Raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// An ISO 3166-1 alpha-2 country code, stored as two ASCII bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Country(pub [u8; 2]);

impl Country {
    /// Builds from a two-letter code.
    ///
    /// # Panics
    /// Panics unless `code` is exactly two ASCII uppercase letters.
    pub const fn new(code: &str) -> Self {
        let b = code.as_bytes();
        assert!(b.len() == 2, "country code must be two letters");
        assert!(b[0].is_ascii_uppercase() && b[1].is_ascii_uppercase());
        Self([b[0], b[1]])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("constructed from ASCII")
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(UserId(42).to_string(), "u42");
        assert_eq!(Asn(20057).to_string(), "AS20057");
        assert_eq!(Country::new("US").to_string(), "US");
        assert_eq!(Country::new("IN").as_str(), "IN");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(UserId(1));
        s.insert(UserId(1));
        s.insert(UserId(2));
        assert_eq!(s.len(), 2);
        assert!(UserId(1) < UserId(2));
        assert_eq!(DeviceId(9).raw(), 9);
        assert_eq!(HouseholdId(3).raw(), 3);
    }

    #[test]
    #[should_panic]
    fn bad_country_code() {
        Country::new("usa");
    }
}
