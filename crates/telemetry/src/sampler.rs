//! The study's four deterministic attribute samplers.
//!
//! §3.1: *"Our sampling method is deterministic over time and over network
//! requests, selecting requests based on the hash value of a particular
//! request attribute. As a result, our datasets include all network requests
//! with the same randomly-selected set of attribute values over time."*
//!
//! Each sampler hashes one attribute with its own domain-separation seed:
//!
//! | dataset                    | attribute            |
//! |----------------------------|----------------------|
//! | request random sample      | (user, ip, ts) tuple |
//! | user random sample         | user id              |
//! | IP random sample           | source address       |
//! | IPv6 prefix random sample  | prefix bits + length |
//!
//! Note the request sampler hashes the whole tuple (there is no request id),
//! which matches "a random sample of all network requests".

use ipv6_study_netaddr::Ipv6Prefix;
use ipv6_study_stats::hash::{sampled, stable_hash64, StableHasher};

use crate::ids::UserId;
use crate::record::RequestRecord;

/// Domain-separation seeds. Fixed constants: the datasets must be the same
/// in every run and every process, exactly like the paper's samplers.
const SEED_REQUEST: u64 = 0x5245_5155; // "REQU"
const SEED_USER: u64 = 0x5553_4552; // "USER"
const SEED_IP: u64 = 0x4950_4144; // "IPAD"
const SEED_PREFIX: u64 = 0x5052_4658; // "PRFX"

/// Sampling configuration and decision functions for all datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct Samplers {
    /// Inclusion probability for the request random sample.
    pub request_rate: f64,
    /// Inclusion probability for the user random sample.
    pub user_rate: f64,
    /// Inclusion probability for the IP random sample.
    pub ip_rate: f64,
    /// Inclusion probability for each IPv6 prefix random sample. The paper
    /// samples prefixes per length; we use one rate across lengths, with
    /// independent per-length hash domains.
    pub prefix_rate: f64,
}

impl Samplers {
    /// The paper's configuration: 0.1% samples throughout.
    pub fn paper() -> Self {
        Self {
            request_rate: 0.001,
            user_rate: 0.001,
            ip_rate: 0.001,
            prefix_rate: 0.001,
        }
    }

    /// A scaled configuration for simulations with `population` users,
    /// chosen so each sample captures roughly the same *proportion* of the
    /// simulated platform as the paper's 0.1% did of ~2.5B accounts. For
    /// small simulated populations this raises the rates (capped at 1.0) so
    /// samples stay statistically useful.
    pub fn scaled_for(population: u64) -> Self {
        // Target ≈ max(4000 users, 0.1%) in the user sample (enough that
        // Figure 1's ±0.5pp weekend/lockdown effects clear sampling noise),
        // capped at 50% so "samples" stay samples.
        let user_rate = (4_000.0 / population.max(1) as f64).clamp(0.001, 0.5);
        Self {
            request_rate: user_rate,
            user_rate,
            // IP sample: addresses outnumber users on v6 and are shared on
            // v4; the same rate keeps both usable.
            ip_rate: user_rate,
            prefix_rate: user_rate,
        }
    }

    /// Whether two sampler configurations make identical decisions — i.e.
    /// every rate is bit-equal. Merging datasets sampled under different
    /// configurations would silently mix incompatible inclusion
    /// probabilities, so [`crate::dataset::StudyDatasets::merge`] requires
    /// this to hold.
    pub fn same_config(&self, other: &Samplers) -> bool {
        self.request_rate.to_bits() == other.request_rate.to_bits()
            && self.user_rate.to_bits() == other.user_rate.to_bits()
            && self.ip_rate.to_bits() == other.ip_rate.to_bits()
            && self.prefix_rate.to_bits() == other.prefix_rate.to_bits()
    }

    /// Whether a user belongs to the user random sample.
    pub fn user_sampled(&self, user: UserId) -> bool {
        sampled(SEED_USER, user.raw(), self.user_rate)
    }

    /// Whether an address belongs to the IP random sample.
    pub fn ip_sampled(&self, rec: &RequestRecord) -> bool {
        sampled(SEED_IP, rec.ip_key(), self.ip_rate)
    }

    /// Whether a request belongs to the request random sample.
    pub fn request_sampled(&self, rec: &RequestRecord) -> bool {
        let mut h = StableHasher::new(SEED_REQUEST);
        h.write_u64(rec.user.raw())
            .write_u64(rec.ip_key())
            .write_u64(u64::from(rec.ts.secs()));
        let key = h.finish();
        sampled(SEED_REQUEST ^ 1, key, self.request_rate)
    }

    /// Whether an IPv6 prefix belongs to the prefix random sample for its
    /// length. Decisions are independent across lengths (per-length hash
    /// domain), mirroring the paper's per-length prefix samples.
    pub fn prefix_sampled(&self, prefix: Ipv6Prefix) -> bool {
        let mut h = StableHasher::new(SEED_PREFIX ^ u64::from(prefix.len()));
        h.write_u128(prefix.bits());
        sampled(SEED_PREFIX, h.finish(), self.prefix_rate)
    }

    /// Stable per-record key usable for auxiliary derivations (e.g. request
    /// jitter); distinct from all sampling decisions.
    pub fn record_key(rec: &RequestRecord) -> u64 {
        let mut h = StableHasher::new(0x5245_434B);
        h.write_u64(rec.user.raw())
            .write_u64(rec.ip_key())
            .write_u64(u64::from(rec.ts.secs()));
        h.finish()
    }
}

/// Derives a per-entity sub-seed for hash-driven generation, mixing a
/// namespace tag with an entity id. Shared helper for simulator crates.
pub fn entity_seed(namespace: u64, entity: u64) -> u64 {
    stable_hash64(namespace, &entity.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Asn, Country};
    use crate::time::SimDate;
    use std::net::IpAddr;

    fn rec(user: u64, ip: &str, secs_offset: u32) -> RequestRecord {
        RequestRecord {
            ts: crate::time::Timestamp::from_secs(SimDate::ymd(4, 13).start().secs() + secs_offset),
            user: UserId(user),
            ip: ip.parse::<IpAddr>().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn user_sampling_is_per_user_and_stable_over_time() {
        let s = Samplers {
            request_rate: 0.5,
            user_rate: 0.5,
            ip_rate: 0.5,
            prefix_rate: 0.5,
        };
        for u in 0..200 {
            let a = s.user_sampled(UserId(u));
            let b = s.user_sampled(UserId(u));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ip_sampling_keys_on_address_only() {
        let s = Samplers {
            request_rate: 1.0,
            user_rate: 1.0,
            ip_rate: 0.5,
            prefix_rate: 1.0,
        };
        let r1 = rec(1, "2001:db8::1", 0);
        let r2 = rec(999, "2001:db8::1", 5000); // same IP, different user/time
        assert_eq!(s.ip_sampled(&r1), s.ip_sampled(&r2));
    }

    #[test]
    fn request_sampling_depends_on_tuple() {
        let s = Samplers {
            request_rate: 0.5,
            user_rate: 1.0,
            ip_rate: 1.0,
            prefix_rate: 1.0,
        };
        let base = rec(1, "2001:db8::1", 0);
        // Deterministic for the identical record.
        assert_eq!(s.request_sampled(&base), s.request_sampled(&base));
        // Across many distinct records the rate is approximately honored.
        let hits = (0..20_000)
            .filter(|&i| s.request_sampled(&rec(i, "2001:db8::1", i as u32)))
            .count();
        assert!((hits as f64 / 20_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn prefix_sampling_is_independent_across_lengths() {
        let s = Samplers {
            request_rate: 1.0,
            user_rate: 1.0,
            ip_rate: 1.0,
            prefix_rate: 0.5,
        };
        let addr: std::net::Ipv6Addr = "2001:db8:1:2:3:4:5:6".parse().unwrap();
        // The /64 decision should not force the /48 decision: across many
        // prefixes, the joint rate should look like product, not identity.
        let mut agree = 0;
        let n = 4000;
        for i in 0..n {
            let a: std::net::Ipv6Addr = format!("2001:db8:{}:{}::1", i / 256, i % 256)
                .parse()
                .unwrap();
            let p64 = Ipv6Prefix::containing(a, 64);
            let p48 = Ipv6Prefix::containing(a, 48);
            if s.prefix_sampled(p64) == s.prefix_sampled(p48) {
                agree += 1;
            }
        }
        let frac = agree as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "decisions should be independent, agree={frac}"
        );
        let _ = addr;
    }

    #[test]
    fn scaled_rates_are_sane() {
        let small = Samplers::scaled_for(10_000);
        assert!(small.user_rate <= 1.0 && small.user_rate >= 0.1);
        let large = Samplers::scaled_for(100_000_000);
        assert!(
            (large.user_rate - 0.001).abs() < 1e-9,
            "floors at the paper's 0.1%"
        );
        let paper = Samplers::paper();
        assert_eq!(paper.user_rate, 0.001);
    }
}
