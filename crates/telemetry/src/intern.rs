//! Global entity intern tables: dense ids for addresses and users.
//!
//! The study's analyses are group-by-entity scans over tens of millions of
//! rows; hashing full 128-bit addresses (and recomputing /64, /56, /48
//! prefixes) per row dominates them. Interning assigns every distinct
//! address and user a **dense** id once — during the driver's freeze step —
//! so the columnar stores carry 4-byte ids instead of 17-byte `IpAddr`
//! enums and 8-byte raw user ids, and every prefix a pass needs is a
//! precomputed per-entry column lookup.
//!
//! # Order isomorphism (the determinism contract)
//!
//! Dense ids are assigned in ascending raw-key order, and [`IpId`] packs
//! the address family into bit 31 (v4 = 0, v6 = 1):
//!
//! - sorting by dense user id ≡ sorting by raw [`UserId`];
//! - sorting by raw [`IpId`] ≡ sorting by [`IpAddr`]'s total order
//!   (all v4 before all v6, numeric within each family);
//! - prefix ids are dense in ascending prefix-bits order.
//!
//! Every group-by in the analysis layer therefore iterates in exactly the
//! order the row-oriented code did, which is what keeps `EXPERIMENTS.md`
//! byte-identical across the columnar refactor.

use std::net::IpAddr;

use ipv6_study_netaddr::{Ipv4Prefix, Ipv6Prefix};

use crate::ids::UserId;
use crate::record::RequestRecord;

/// A dense interned address id: bit 31 is the family (1 = IPv6), the low
/// 31 bits are the per-family index in ascending numeric address order.
///
/// The packing makes the `u32` ordering of ids isomorphic to [`IpAddr`]'s
/// derived total order (v4 < v6, numeric within a family), so sorting an
/// id column reproduces the row-oriented sort exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpId(u32);

/// The family bit of an [`IpId`].
const V6_BIT: u32 = 1 << 31;

impl IpId {
    /// Builds an id from a family and per-family index.
    ///
    /// # Panics
    /// Panics when `index` overflows the 31-bit per-family space.
    pub fn new(v6: bool, index: usize) -> Self {
        assert!((index as u64) < u64::from(V6_BIT), "IpId index overflow");
        Self(if v6 {
            V6_BIT | index as u32
        } else {
            index as u32
        })
    }

    /// Whether the id denotes an IPv6 address.
    #[inline]
    pub fn is_v6(self) -> bool {
        self.0 & V6_BIT != 0
    }

    /// The per-family table index.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & !V6_BIT) as usize
    }

    /// The packed raw value (for radix passes over id columns).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// The interned address dictionary with precomputed prefix-id columns.
///
/// Per-family address tables are sorted and deduplicated; each IPv6 entry
/// carries the dense id of its /64, /56 and /48 prefix, each IPv4 entry
/// the dense id of its /24 — the prefix lengths the paper's aggregation
/// analyses (Figures 4, 6, 9–11) hit on every pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IpTable {
    v4: Vec<u32>,
    v6: Vec<u128>,
    v4_p24: Vec<u32>,
    v6_p64: Vec<u32>,
    v6_p56: Vec<u32>,
    v6_p48: Vec<u32>,
    p24: Vec<u32>,
    p64: Vec<u128>,
    p56: Vec<u128>,
    p48: Vec<u128>,
}

/// Builds the per-entry prefix-id column plus the dense prefix table for
/// one prefix length over a sorted address column. Sorted input means the
/// masked bits are non-decreasing, so dense ids are assigned by run scan.
fn prefix_column<B: Copy + PartialEq>(addrs: &[B], mask: impl Fn(B) -> B) -> (Vec<u32>, Vec<B>) {
    let mut ids = Vec::with_capacity(addrs.len());
    let mut table: Vec<B> = Vec::new();
    for &a in addrs {
        let bits = mask(a);
        if table.last() != Some(&bits) {
            table.push(bits);
        }
        ids.push((table.len() - 1) as u32);
    }
    (ids, table)
}

impl IpTable {
    /// Builds the table from the distinct addresses of a record stream.
    pub fn build<'a>(records: impl Iterator<Item = &'a RequestRecord>) -> Self {
        let mut v4: Vec<u32> = Vec::new();
        let mut v6: Vec<u128> = Vec::new();
        for r in records {
            match r.ip {
                IpAddr::V4(a) => v4.push(u32::from(a)),
                IpAddr::V6(a) => v6.push(u128::from(a)),
            }
        }
        Self::from_keys(v4, v6)
    }

    /// Builds the table from raw per-family address keys (duplicates and
    /// arbitrary order allowed). The result depends only on the distinct
    /// key *sets*, which is what makes tables built over spilled streams
    /// bit-identical to tables built over the same records in memory.
    pub fn from_keys(mut v4: Vec<u32>, mut v6: Vec<u128>) -> Self {
        crate::kernels::radix_sort_u32(&mut v4);
        v4.dedup();
        v6.sort_unstable();
        v6.dedup();
        let (v4_p24, p24) = prefix_column(&v4, |a| Ipv4Prefix::bits_containing(a, 24));
        let (v6_p64, p64) = prefix_column(&v6, |a| Ipv6Prefix::bits_containing(a, 64));
        let (v6_p56, p56) = prefix_column(&v6, |a| Ipv6Prefix::bits_containing(a, 56));
        let (v6_p48, p48) = prefix_column(&v6, |a| Ipv6Prefix::bits_containing(a, 48));
        Self {
            v4,
            v6,
            v4_p24,
            v6_p64,
            v6_p56,
            v6_p48,
            p24,
            p64,
            p56,
            p48,
        }
    }

    /// Number of distinct addresses (both families).
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True when no address was interned.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty()
    }

    /// Number of distinct IPv6 addresses.
    pub fn num_v6(&self) -> usize {
        self.v6.len()
    }

    /// Number of distinct IPv4 addresses.
    pub fn num_v4(&self) -> usize {
        self.v4.len()
    }

    /// The dense id of an interned address.
    ///
    /// # Panics
    /// Panics when the address was not part of the stream the table was
    /// built over — encoding is only defined for interned entities.
    pub fn id_of(&self, ip: IpAddr) -> IpId {
        match ip {
            IpAddr::V4(a) => {
                let i = self
                    .v4
                    .binary_search(&u32::from(a))
                    .expect("address was interned");
                IpId::new(false, i)
            }
            IpAddr::V6(a) => {
                let i = self
                    .v6
                    .binary_search(&u128::from(a))
                    .expect("address was interned");
                IpId::new(true, i)
            }
        }
    }

    /// The address an id denotes.
    #[inline]
    pub fn addr(&self, id: IpId) -> IpAddr {
        if id.is_v6() {
            IpAddr::V6(std::net::Ipv6Addr::from(self.v6[id.index()]))
        } else {
            IpAddr::V4(std::net::Ipv4Addr::from(self.v4[id.index()]))
        }
    }

    /// Raw 128-bit value of an IPv6 id.
    ///
    /// # Panics
    /// Panics (in debug builds, via indexing invariants) when `id` is v4.
    #[inline]
    pub fn v6_bits(&self, id: IpId) -> u128 {
        debug_assert!(id.is_v6());
        self.v6[id.index()]
    }

    /// Raw 32-bit value of an IPv4 id.
    #[inline]
    pub fn v4_bits(&self, id: IpId) -> u32 {
        debug_assert!(!id.is_v6());
        self.v4[id.index()]
    }

    /// Dense /64 prefix id of an IPv6 address id.
    #[inline]
    pub fn p64_id(&self, id: IpId) -> u32 {
        self.v6_p64[id.index()]
    }

    /// Dense /56 prefix id of an IPv6 address id.
    #[inline]
    pub fn p56_id(&self, id: IpId) -> u32 {
        self.v6_p56[id.index()]
    }

    /// Dense /48 prefix id of an IPv6 address id.
    #[inline]
    pub fn p48_id(&self, id: IpId) -> u32 {
        self.v6_p48[id.index()]
    }

    /// Dense /24 prefix id of an IPv4 address id.
    #[inline]
    pub fn p24_id(&self, id: IpId) -> u32 {
        self.v4_p24[id.index()]
    }

    /// Network bits of a dense /64 prefix id.
    #[inline]
    pub fn p64_bits(&self, pid: u32) -> u128 {
        self.p64[pid as usize]
    }

    /// Network bits of a dense /56 prefix id.
    #[inline]
    pub fn p56_bits(&self, pid: u32) -> u128 {
        self.p56[pid as usize]
    }

    /// Network bits of a dense /48 prefix id.
    #[inline]
    pub fn p48_bits(&self, pid: u32) -> u128 {
        self.p48[pid as usize]
    }

    /// Network bits of a dense /24 prefix id.
    #[inline]
    pub fn p24_bits(&self, pid: u32) -> u32 {
        self.p24[pid as usize]
    }

    /// The per-entry prefix-id column and dense prefix table for a
    /// precomputed IPv6 length, when that length is precomputed.
    pub fn v6_prefix_ids(&self, len: u8) -> Option<(&[u32], &[u128])> {
        match len {
            64 => Some((&self.v6_p64, &self.p64)),
            56 => Some((&self.v6_p56, &self.p56)),
            48 => Some((&self.v6_p48, &self.p48)),
            _ => None,
        }
    }

    /// Heap bytes held by the table (address and prefix columns).
    pub fn bytes(&self) -> usize {
        self.v4.len() * 4
            + self.v6.len() * 16
            + (self.v4_p24.len() + self.v6_p64.len() + self.v6_p56.len() + self.v6_p48.len()) * 4
            + self.p24.len() * 4
            + (self.p64.len() + self.p56.len() + self.p48.len()) * 16
    }
}

/// The interned user dictionary: dense `u32` ids in ascending raw order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserTable {
    raw: Vec<u64>,
}

impl UserTable {
    /// Builds the table from the distinct users of a record stream.
    pub fn build<'a>(records: impl Iterator<Item = &'a RequestRecord>) -> Self {
        Self::from_keys(records.map(|r| r.user.raw()).collect())
    }

    /// Builds the table from raw user keys (duplicates and arbitrary
    /// order allowed); depends only on the distinct key set.
    pub fn from_keys(mut raw: Vec<u64>) -> Self {
        crate::kernels::radix_sort_u64(&mut raw);
        raw.dedup();
        Self { raw }
    }

    /// Number of distinct users.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when no user was interned.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The dense id of an interned user.
    ///
    /// # Panics
    /// Panics when the user was not part of the stream the table was
    /// built over.
    #[inline]
    pub fn dense_of(&self, user: UserId) -> u32 {
        self.raw
            .binary_search(&user.raw())
            .expect("user was interned") as u32
    }

    /// The raw user id a dense id denotes.
    #[inline]
    pub fn user(&self, dense: u32) -> UserId {
        UserId(self.raw[dense as usize])
    }

    /// Heap bytes held by the table.
    pub fn bytes(&self) -> usize {
        self.raw.len() * 8
    }
}

/// The shared intern tables a frozen telemetry core hangs off: one address
/// dictionary and one user dictionary, built once over every retained
/// store during the driver's freeze step and shared by `Arc` across all
/// frozen stores, indexes, and analysis threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EntityTables {
    /// Interned addresses with precomputed prefix-id columns.
    pub ips: IpTable,
    /// Interned users.
    pub users: UserTable,
}

impl EntityTables {
    /// Builds both tables from one pass over a record stream.
    pub fn build<'a>(records: impl Iterator<Item = &'a RequestRecord> + Clone) -> Self {
        Self {
            ips: IpTable::build(records.clone()),
            users: UserTable::build(records),
        }
    }

    /// Convenience constructor over a record slice.
    pub fn from_records(records: &[RequestRecord]) -> Self {
        Self::build(records.iter())
    }

    /// Heap bytes held by both tables.
    pub fn bytes(&self) -> usize {
        self.ips.bytes() + self.users.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Asn, Country};
    use crate::time::SimDate;

    fn rec(user: u64, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(12, 0, 0),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(64496),
            country: Country::new("US"),
        }
    }

    #[test]
    fn ids_are_order_isomorphic_to_raw_keys() {
        let recs = vec![
            rec(9, "2001:db8::2"),
            rec(3, "10.0.0.1"),
            rec(7, "2001:db8::1"),
            rec(3, "192.0.2.1"),
            rec(9, "10.0.0.1"),
        ];
        let t = EntityTables::from_records(&recs);
        // Users dense-ascending == raw-ascending.
        assert_eq!(t.users.len(), 3);
        assert_eq!(t.users.user(0), UserId(3));
        assert_eq!(t.users.user(2), UserId(9));
        assert_eq!(t.users.dense_of(UserId(7)), 1);
        // Addresses: every v4 id sorts below every v6 id, numeric within.
        let mut addrs: Vec<IpAddr> = recs.iter().map(|r| r.ip).collect();
        addrs.sort_unstable();
        addrs.dedup();
        let ids: Vec<IpId> = addrs.iter().map(|&a| t.ips.id_of(a)).collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "id order == IpAddr order"
        );
        for (&a, &id) in addrs.iter().zip(&ids) {
            assert_eq!(t.ips.addr(id), a, "round trip");
        }
        assert_eq!(t.ips.num_v4(), 2);
        assert_eq!(t.ips.num_v6(), 2);
        assert!(!t.ips.is_empty() && !t.users.is_empty());
        assert!(t.bytes() > 0);
    }

    /// Satellite: the stored /64 /56 /48 (and /24) prefix ids must agree
    /// with `netaddr` prefix math applied to the raw address — including
    /// v4-mapped and edge addresses.
    #[test]
    fn prefix_columns_agree_with_netaddr_math() {
        use ipv6_study_stats::testgen::TestGen;
        let mut g = TestGen::new(0x4950_5442); // "IPTB"
        let mut recs = Vec::new();
        for i in 0..512u64 {
            let bits = g.next_u128();
            recs.push(rec(i, &std::net::Ipv6Addr::from(bits).to_string()));
            let v4 = std::net::Ipv4Addr::from(g.next_u64() as u32);
            recs.push(rec(i, &v4.to_string()));
        }
        // Edge and v4-mapped addresses.
        for s in [
            "::",
            "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
            "::ffff:192.0.2.1",
            "::1",
            "0.0.0.0",
            "255.255.255.255",
        ] {
            recs.push(rec(1, s));
        }
        let t = IpTable::build(recs.iter());
        for r in &recs {
            let id = t.id_of(r.ip);
            match r.ip {
                IpAddr::V6(a) => {
                    let raw = u128::from(a);
                    assert_eq!(
                        t.p64_bits(t.p64_id(id)),
                        Ipv6Prefix::containing(a, 64).bits(),
                        "/64 of {a}"
                    );
                    assert_eq!(
                        t.p56_bits(t.p56_id(id)),
                        Ipv6Prefix::bits_containing(raw, 56),
                        "/56 of {a}"
                    );
                    assert_eq!(
                        t.p48_bits(t.p48_id(id)),
                        Ipv6Prefix::bits_containing(raw, 48),
                        "/48 of {a}"
                    );
                    assert_eq!(t.v6_bits(id), raw);
                }
                IpAddr::V4(a) => {
                    assert_eq!(
                        t.p24_bits(t.p24_id(id)),
                        Ipv4Prefix::containing(a, 24).bits(),
                        "/24 of {a}"
                    );
                    assert_eq!(t.v4_bits(id), u32::from(a));
                }
            }
        }
        // Prefix ids are dense in ascending prefix-bits order.
        let (p64_ids, p64_table) = t.v6_prefix_ids(64).unwrap();
        assert!(p64_table.windows(2).all(|w| w[0] < w[1]));
        assert!(!p64_ids.is_empty());
        assert!(t.v6_prefix_ids(40).is_none());
    }

    #[test]
    #[should_panic(expected = "address was interned")]
    fn uninterned_address_panics() {
        let t = IpTable::build([rec(1, "10.0.0.1")].iter());
        let _ = t.id_of("10.0.0.2".parse().unwrap());
    }

    #[test]
    fn empty_tables_are_valid() {
        let t = EntityTables::from_records(&[]);
        assert!(t.ips.is_empty());
        assert!(t.users.is_empty());
        assert_eq!(t.bytes(), 0);
    }
}
