//! Telemetry-platform substrate for the IPv6 user-level study.
//!
//! The paper's methodology (§3.1) observes *authenticated HTTP requests* at
//! a large online platform and builds four dataset types by deterministic
//! attribute sampling. This crate is that platform's data layer, rebuilt
//! from scratch:
//!
//! - [`time`] — the study's calendar: [`time::SimDate`] /
//!   [`time::Timestamp`] over 2020, with weekday and
//!   study-window constants (Jan 23 – Apr 19; the Apr 13–19 focus week).
//! - [`ids`] — entity identifiers shared across the workspace: users,
//!   devices, households, ASNs, countries.
//! - [`record`] — the request telemetry schema: timestamp, user id, source
//!   IP, ASN, country — exactly the five fields the paper collects.
//! - [`sampler`] — the four deterministic samplers: request random sample,
//!   user random sample, IP random sample, and per-length IPv6 prefix
//!   random samples.
//! - [`intern`] — global entity intern tables built at freeze time:
//!   [`intern::IpTable`] (dense [`intern::IpId`]s with precomputed
//!   /64 /56 /48 and v4 /24 prefix ids) and [`intern::UserTable`].
//! - [`columns`] — the columnar (struct-of-arrays) record layout:
//!   [`columns::ColumnStore`] and the borrowed [`columns::ColumnSlice`]
//!   window every frozen query returns.
//! - [`store`] — an in-memory request store with time-range and group-by
//!   helpers; freezing encodes it into columns.
//! - [`sink`] — the sealed [`sink::RequestSink`] consumer trait (with its
//!   `push`/`flush_segment`/`finish` lifecycle) that simulator crates emit
//!   into, the production [`sink::ShardSink`] that applies the §3.1
//!   samplers in-stream, and tee/closure/counting combinators.
//! - [`spill`] — bounded out-of-core segment storage: full-fidelity
//!   streams spill to disk as per-shard sorted runs and are k-way merged
//!   back into columnar stores with byte-identical order.
//! - [`labels`] — the abusive-account label dataset with creation/detection
//!   dates (the paper's labels are lifetime-censored by detection; ours
//!   record both dates so analyses can reproduce that censoring).
//! - [`dataset`] — [`dataset::StudyDatasets`]: routes a
//!   simulated request stream into all sampled datasets in one pass.
//! - [`csv`] — import/export, so these analyses can run over another
//!   vantage point's telemetry (the replication path of §3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod csv;
pub mod dataset;
pub mod ids;
pub mod intern;
pub mod kernels;
pub mod labels;
pub mod record;
pub mod sampler;
pub mod sink;
pub mod spill;
pub mod store;
pub mod time;

pub use columns::{ColumnSlice, ColumnStore, OwnedColumns, RecordView};
pub use dataset::{FrozenDatasets, StudyDatasets};
pub use ids::{Asn, Country, DeviceId, HouseholdId, UserId};
pub use intern::{EntityTables, IpId, IpTable, UserTable};
pub use kernels::{
    filter_count, mask_eq_u32, mask_from, mask_ts_window, radix_sort_perm_keys,
    radix_sort_perm_u32, radix_sort_records_by_ts, radix_sort_u32, radix_sort_u64, scratch_reset,
    scratch_stats, with_scratch, ScratchArena, SelectionMask, U32Key,
};
pub use labels::{AbuseInfo, AbuseLabels};
pub use record::RequestRecord;
pub use sampler::Samplers;
pub use sink::{
    CountingSink, FamilyPayload, FnSink, RequestSink, ShardPayload, ShardSink, SinkStorage, Tee,
};
pub use spill::{
    read_checkpoint_segment, write_checkpoint_segment, IoOp, MemGauge, RunManifest, SpillError,
    SpillFaultPlan, SpillPolicy, SpillSession, SpillStats, StorageMode, DEFAULT_IO_RETRIES,
    DEFAULT_SEGMENT_ROWS,
};
pub use store::{FrozenStore, RequestStore};
pub use time::{DateRange, SimDate, Timestamp};
