//! CSV import/export for request stores and abuse labels.
//!
//! §3.3 of the paper: *"we aim to … explain our methodology in enough
//! detail for it to be reproduced on data from another vantage point on the
//! internet."* These readers/writers are that bridge: export simulated
//! datasets for external tooling, or load another platform's telemetry
//! (five columns: timestamp, user id, source IP, ASN, country) and run
//! every analysis in this workspace on it unchanged.
//!
//! The format is deliberately minimal: a header line, then one record per
//! line, RFC-4180-style but with no quoting needed (no field can contain a
//! comma).

use std::fmt::Write as _;
use std::net::IpAddr;

use crate::ids::{Asn, Country, UserId};
use crate::labels::{AbuseInfo, AbuseLabels};
use crate::record::RequestRecord;
use crate::store::RequestStore;
use crate::time::{SimDate, Timestamp};

/// Error from parsing a CSV dataset. Every variant carries the 1-based
/// line number and names the field (or expected content) involved, so a
/// caller can point at the exact cell of a million-line import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Input ended before the expected content (an empty file reports
    /// line 1 expecting the header).
    Truncated {
        /// 1-based line number where input ended.
        line: usize,
        /// What should have been there.
        expected: &'static str,
    },
    /// The header line did not match the format's header.
    BadHeader {
        /// 1-based line number (always 1).
        line: usize,
        /// The expected header.
        expected: &'static str,
        /// The header actually found.
        found: String,
    },
    /// A row ended before this field.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The first field the row is missing.
        field: &'static str,
    },
    /// A field failed to parse or violated a format constraint.
    BadField {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: &'static str,
        /// The offending value, verbatim.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A row carried content past its last field.
    TrailingGarbage {
        /// 1-based line number.
        line: usize,
        /// The last legitimate field of the row.
        field: &'static str,
        /// The extra content, verbatim.
        garbage: String,
    },
}

impl CsvError {
    /// The 1-based line number the error points at.
    pub fn line(&self) -> usize {
        match self {
            Self::Truncated { line, .. }
            | Self::BadHeader { line, .. }
            | Self::MissingField { line, .. }
            | Self::BadField { line, .. }
            | Self::TrailingGarbage { line, .. } => *line,
        }
    }

    /// The field (or expected content) the error names.
    pub fn field(&self) -> &str {
        match self {
            Self::Truncated { expected, .. } => expected,
            Self::BadHeader { expected, .. } => expected,
            Self::MissingField { field, .. }
            | Self::BadField { field, .. }
            | Self::TrailingGarbage { field, .. } => field,
        }
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { line, expected } => {
                write!(f, "line {line}: input ended, expected {expected}")
            }
            Self::BadHeader {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: bad header {found:?}, expected {expected:?}"
            ),
            Self::MissingField { line, field } => {
                write!(f, "line {line}: missing field {field}")
            }
            Self::BadField {
                line,
                field,
                value,
                reason,
            } => write!(f, "line {line}: bad {field} {value:?}: {reason}"),
            Self::TrailingGarbage {
                line,
                field,
                garbage,
            } => write!(
                f,
                "line {line}: trailing garbage {garbage:?} after field {field}"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// Header of the request CSV format.
pub const REQUEST_HEADER: &str = "ts_secs,user_id,ip,asn,country";

/// Serializes records to CSV (the five §3.1 telemetry fields).
pub fn requests_to_csv(records: &[RequestRecord]) -> String {
    let mut out = String::with_capacity(32 * (records.len() + 1));
    out.push_str(REQUEST_HEADER);
    out.push('\n');
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.ts.secs(),
            r.user.raw(),
            r.ip,
            r.asn.0,
            r.country
        );
    }
    out
}

/// Checks a header line against the format's expected header.
fn check_header(first: Option<(usize, &str)>, expected: &'static str) -> Result<(), CsvError> {
    match first {
        Some((_, h)) if h.trim() == expected => Ok(()),
        Some((_, h)) => Err(CsvError::BadHeader {
            line: 1,
            expected,
            found: h.to_string(),
        }),
        None => Err(CsvError::Truncated {
            line: 1,
            expected: "header",
        }),
    }
}

/// Parses one typed field, attributing failures to `(line, field, value)`.
fn parse_field<T: std::str::FromStr>(
    line: usize,
    field: &'static str,
    value: &str,
) -> Result<T, CsvError>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e: T::Err| CsvError::BadField {
        line,
        field,
        value: value.to_string(),
        reason: e.to_string(),
    })
}

/// Parses a request CSV back into a store.
pub fn requests_from_csv(csv: &str) -> Result<RequestStore, CsvError> {
    let mut lines = csv.lines().enumerate();
    check_header(lines.next(), REQUEST_HEADER)?;
    let mut store = RequestStore::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &'static str| {
            parts.next().ok_or(CsvError::MissingField {
                line: lineno,
                field: name,
            })
        };
        let ts: u32 = parse_field(lineno, "ts_secs", field("ts_secs")?)?;
        let user: u64 = parse_field(lineno, "user_id", field("user_id")?)?;
        let ip: IpAddr = parse_field(lineno, "ip", field("ip")?)?;
        let asn: u32 = parse_field(lineno, "asn", field("asn")?)?;
        let cc = field("country")?;
        if cc.len() != 2 || !cc.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(CsvError::BadField {
                line: lineno,
                field: "country",
                value: cc.to_string(),
                reason: "country code must be two uppercase ASCII letters".into(),
            });
        }
        let rest: Vec<&str> = parts.collect();
        if !rest.is_empty() {
            return Err(CsvError::TrailingGarbage {
                line: lineno,
                field: "country",
                garbage: rest.join(","),
            });
        }
        store.push(RequestRecord {
            ts: Timestamp::from_secs(ts),
            user: UserId(user),
            ip,
            asn: Asn(asn),
            country: Country::new(cc),
        });
    }
    Ok(store)
}

/// Header of the labels CSV format.
pub const LABELS_HEADER: &str = "user_id,created_day,detected_day";

/// Serializes abuse labels to CSV (days as indices since Jan 1 2020).
pub fn labels_to_csv(labels: &AbuseLabels) -> String {
    let mut rows: Vec<(u64, u16, u16)> = labels
        .iter()
        .map(|(u, i)| (u.raw(), i.created.index(), i.detected.index()))
        .collect();
    rows.sort_unstable();
    let mut out = String::from(LABELS_HEADER);
    out.push('\n');
    for (u, c, d) in rows {
        let _ = writeln!(out, "{u},{c},{d}");
    }
    out
}

/// Parses a labels CSV.
pub fn labels_from_csv(csv: &str) -> Result<AbuseLabels, CsvError> {
    const FIELDS: [&str; 3] = ["user_id", "created_day", "detected_day"];
    let mut lines = csv.lines().enumerate();
    check_header(lines.next(), LABELS_HEADER)?;
    let mut labels = AbuseLabels::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 3 {
            return Err(CsvError::MissingField {
                line: lineno,
                field: FIELDS[fields.len()],
            });
        }
        if fields.len() > 3 {
            return Err(CsvError::TrailingGarbage {
                line: lineno,
                field: FIELDS[2],
                garbage: fields[3..].join(","),
            });
        }
        let user: u64 = parse_field(lineno, FIELDS[0], fields[0])?;
        let created: u16 = parse_field(lineno, FIELDS[1], fields[1])?;
        let detected: u16 = parse_field(lineno, FIELDS[2], fields[2])?;
        for (field, day, value) in [
            (FIELDS[1], created, fields[1]),
            (FIELDS[2], detected, fields[2]),
        ] {
            if day >= 366 {
                return Err(CsvError::BadField {
                    line: lineno,
                    field,
                    value: value.to_string(),
                    reason: "day index out of 2020 (must be < 366)".into(),
                });
            }
        }
        if detected < created {
            return Err(CsvError::BadField {
                line: lineno,
                field: FIELDS[2],
                value: fields[2].to_string(),
                reason: format!("detected day precedes created day {created}"),
            });
        }
        labels.insert(
            UserId(user),
            AbuseInfo {
                created: SimDate::from_index(created),
                detected: SimDate::from_index(detected),
            },
        );
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u64, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(10, 30, 5),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(20057),
            country: Country::new("US"),
        }
    }

    #[test]
    fn request_round_trip() {
        let records = vec![rec(1, "2001:db8::1"), rec(2, "192.0.2.7")];
        let csv = requests_to_csv(&records);
        let mut store = requests_from_csv(&csv).unwrap();
        assert_eq!(store.len(), 2);
        let back = store.all();
        assert_eq!(back[0], records[0]);
        assert_eq!(back[1], records[1]);
    }

    #[test]
    fn request_csv_rejects_empty_input() {
        let e = requests_from_csv("").unwrap_err();
        assert_eq!(
            e,
            CsvError::Truncated {
                line: 1,
                expected: "header"
            }
        );
        assert_eq!(e.line(), 1);
        let e = requests_from_csv("wrong,header\n").unwrap_err();
        assert!(matches!(e, CsvError::BadHeader { line: 1, .. }));
        assert_eq!(e.field(), REQUEST_HEADER);
    }

    #[test]
    fn request_csv_rejects_non_numeric_timestamp() {
        let e = requests_from_csv(&format!("{REQUEST_HEADER}\nnotanumber,1,::1,1,US")).unwrap_err();
        match &e {
            CsvError::BadField {
                line, field, value, ..
            } => {
                assert_eq!(*line, 2);
                assert_eq!(*field, "ts_secs");
                assert_eq!(value, "notanumber");
            }
            other => panic!("expected BadField, got {other:?}"),
        }
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn request_csv_rejects_truncated_row() {
        let e = requests_from_csv(&format!("{REQUEST_HEADER}\n1,1,::1,1")).unwrap_err();
        assert_eq!(
            e,
            CsvError::MissingField {
                line: 2,
                field: "country"
            }
        );
        // A row cut even shorter names the first missing field.
        let e = requests_from_csv(&format!("{REQUEST_HEADER}\n1")).unwrap_err();
        assert_eq!(
            e,
            CsvError::MissingField {
                line: 2,
                field: "user_id"
            }
        );
    }

    #[test]
    fn request_csv_rejects_trailing_garbage() {
        let e =
            requests_from_csv(&format!("{REQUEST_HEADER}\n1,1,::1,1,US,extra,junk")).unwrap_err();
        assert_eq!(
            e,
            CsvError::TrailingGarbage {
                line: 2,
                field: "country",
                garbage: "extra,junk".into()
            }
        );
    }

    #[test]
    fn request_csv_rejects_bad_values_with_field_names() {
        let base = format!("{REQUEST_HEADER}\n");
        let e = requests_from_csv(&format!("{base}1,1,not-an-ip,1,US")).unwrap_err();
        assert_eq!(e.field(), "ip");
        let e = requests_from_csv(&format!("{base}1,1,::1,1,usa")).unwrap_err();
        assert_eq!(e.field(), "country");
        // Line numbers skip blank lines correctly.
        let e = requests_from_csv(&format!("{base}\n\nbad")).unwrap_err();
        assert_eq!(e.line(), 4);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = format!("{REQUEST_HEADER}\n\n{},1,::1,7,DE\n\n", 86_400);
        let mut store = requests_from_csv(&csv).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.all()[0].country, Country::new("DE"));
    }

    #[test]
    fn labels_round_trip() {
        let mut labels = AbuseLabels::new();
        labels.insert(
            UserId(10),
            AbuseInfo {
                created: SimDate::ymd(4, 10),
                detected: SimDate::ymd(4, 12),
            },
        );
        labels.insert(
            UserId(7),
            AbuseInfo {
                created: SimDate::ymd(3, 1),
                detected: SimDate::ymd(3, 1),
            },
        );
        let csv = labels_to_csv(&labels);
        let back = labels_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(UserId(10)).unwrap().detected, SimDate::ymd(4, 12));
        // Output is sorted by user id for determinism.
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[1].starts_with("7,"));
    }

    #[test]
    fn labels_csv_rejects_inconsistencies() {
        let base = format!("{LABELS_HEADER}\n");
        let e = labels_from_csv(&format!("{base}1,50,40")).unwrap_err();
        assert!(
            matches!(
                &e,
                CsvError::BadField {
                    line: 2,
                    field: "detected_day",
                    ..
                }
            ),
            "detected < created: {e:?}"
        );
        let e = labels_from_csv(&format!("{base}1,400,401")).unwrap_err();
        assert!(
            matches!(
                &e,
                CsvError::BadField {
                    line: 2,
                    field: "created_day",
                    ..
                }
            ),
            "beyond 2020: {e:?}"
        );
        let e = labels_from_csv(&format!("{base}1,2")).unwrap_err();
        assert_eq!(
            e,
            CsvError::MissingField {
                line: 2,
                field: "detected_day"
            }
        );
        let e = labels_from_csv(&format!("{base}1,2,3,4")).unwrap_err();
        assert!(matches!(
            e,
            CsvError::TrailingGarbage {
                line: 2,
                field: "detected_day",
                ..
            }
        ));
        let e = labels_from_csv("").unwrap_err();
        assert_eq!(
            e,
            CsvError::Truncated {
                line: 1,
                expected: "header"
            }
        );
        let e = labels_from_csv(&format!("{base}x,2,3")).unwrap_err();
        assert_eq!(e.field(), "user_id");
    }
}
