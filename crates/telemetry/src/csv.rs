//! CSV import/export for request stores and abuse labels.
//!
//! §3.3 of the paper: *"we aim to … explain our methodology in enough
//! detail for it to be reproduced on data from another vantage point on the
//! internet."* These readers/writers are that bridge: export simulated
//! datasets for external tooling, or load another platform's telemetry
//! (five columns: timestamp, user id, source IP, ASN, country) and run
//! every analysis in this workspace on it unchanged.
//!
//! The format is deliberately minimal: a header line, then one record per
//! line, RFC-4180-style but with no quoting needed (no field can contain a
//! comma).

use std::fmt::Write as _;
use std::net::IpAddr;

use crate::ids::{Asn, Country, UserId};
use crate::labels::{AbuseInfo, AbuseLabels};
use crate::record::RequestRecord;
use crate::store::RequestStore;
use crate::time::{SimDate, Timestamp};

/// Error from parsing a CSV dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, msg: impl Into<String>) -> CsvError {
    CsvError {
        line,
        msg: msg.into(),
    }
}

/// Header of the request CSV format.
pub const REQUEST_HEADER: &str = "ts_secs,user_id,ip,asn,country";

/// Serializes records to CSV (the five §3.1 telemetry fields).
pub fn requests_to_csv(records: &[RequestRecord]) -> String {
    let mut out = String::with_capacity(32 * (records.len() + 1));
    out.push_str(REQUEST_HEADER);
    out.push('\n');
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.ts.secs(),
            r.user.raw(),
            r.ip,
            r.asn.0,
            r.country
        );
    }
    out
}

/// Parses a request CSV back into a store.
pub fn requests_from_csv(csv: &str) -> Result<RequestStore, CsvError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == REQUEST_HEADER => {}
        Some((_, h)) => return Err(err(1, format!("bad header: {h:?}"))),
        None => return Err(err(1, "empty input")),
    }
    let mut store = RequestStore::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| err(lineno, format!("missing field {name}")))
        };
        let ts: u32 = field("ts_secs")?
            .parse()
            .map_err(|e| err(lineno, format!("bad ts: {e}")))?;
        let user: u64 = field("user_id")?
            .parse()
            .map_err(|e| err(lineno, format!("bad user id: {e}")))?;
        let ip: IpAddr = field("ip")?
            .parse()
            .map_err(|e| err(lineno, format!("bad ip: {e}")))?;
        let asn: u32 = field("asn")?
            .parse()
            .map_err(|e| err(lineno, format!("bad asn: {e}")))?;
        let cc = field("country")?;
        if cc.len() != 2 || !cc.bytes().all(|b| b.is_ascii_uppercase()) {
            return Err(err(lineno, format!("bad country code {cc:?}")));
        }
        if parts.next().is_some() {
            return Err(err(lineno, "too many fields"));
        }
        store.push(RequestRecord {
            ts: Timestamp::from_secs(ts),
            user: UserId(user),
            ip,
            asn: Asn(asn),
            country: Country::new(cc),
        });
    }
    Ok(store)
}

/// Header of the labels CSV format.
pub const LABELS_HEADER: &str = "user_id,created_day,detected_day";

/// Serializes abuse labels to CSV (days as indices since Jan 1 2020).
pub fn labels_to_csv(labels: &AbuseLabels) -> String {
    let mut rows: Vec<(u64, u16, u16)> = labels
        .iter()
        .map(|(u, i)| (u.raw(), i.created.index(), i.detected.index()))
        .collect();
    rows.sort_unstable();
    let mut out = String::from(LABELS_HEADER);
    out.push('\n');
    for (u, c, d) in rows {
        let _ = writeln!(out, "{u},{c},{d}");
    }
    out
}

/// Parses a labels CSV.
pub fn labels_from_csv(csv: &str) -> Result<AbuseLabels, CsvError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == LABELS_HEADER => {}
        Some((_, h)) => return Err(err(1, format!("bad header: {h:?}"))),
        None => return Err(err(1, "empty input")),
    }
    let mut labels = AbuseLabels::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(err(
                lineno,
                format!("expected 3 fields, got {}", fields.len()),
            ));
        }
        let user: u64 = fields[0]
            .parse()
            .map_err(|e| err(lineno, format!("bad user id: {e}")))?;
        let created: u16 = fields[1]
            .parse()
            .map_err(|e| err(lineno, format!("bad created day: {e}")))?;
        let detected: u16 = fields[2]
            .parse()
            .map_err(|e| err(lineno, format!("bad detected day: {e}")))?;
        if created >= 366 || detected >= 366 {
            return Err(err(lineno, "day index out of 2020"));
        }
        if detected < created {
            return Err(err(lineno, "detected before created"));
        }
        labels.insert(
            UserId(user),
            AbuseInfo {
                created: SimDate::from_index(created),
                detected: SimDate::from_index(detected),
            },
        );
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u64, ip: &str) -> RequestRecord {
        RequestRecord {
            ts: SimDate::ymd(4, 13).at(10, 30, 5),
            user: UserId(user),
            ip: ip.parse().unwrap(),
            asn: Asn(20057),
            country: Country::new("US"),
        }
    }

    #[test]
    fn request_round_trip() {
        let records = vec![rec(1, "2001:db8::1"), rec(2, "192.0.2.7")];
        let csv = requests_to_csv(&records);
        let mut store = requests_from_csv(&csv).unwrap();
        assert_eq!(store.len(), 2);
        let back = store.all();
        assert_eq!(back[0], records[0]);
        assert_eq!(back[1], records[1]);
    }

    #[test]
    fn request_csv_rejects_malformed_input() {
        assert!(requests_from_csv("").is_err());
        assert!(requests_from_csv("wrong,header\n").is_err());
        let base = format!("{REQUEST_HEADER}\n");
        assert!(requests_from_csv(&format!("{base}notanumber,1,::1,1,US")).is_err());
        assert!(requests_from_csv(&format!("{base}1,1,not-an-ip,1,US")).is_err());
        assert!(requests_from_csv(&format!("{base}1,1,::1,1,usa")).is_err());
        assert!(requests_from_csv(&format!("{base}1,1,::1,1,US,extra")).is_err());
        assert!(requests_from_csv(&format!("{base}1,1,::1,1")).is_err());
        // Error carries the line number.
        let e = requests_from_csv(&format!("{base}\n\nbad")).unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = format!("{REQUEST_HEADER}\n\n{},1,::1,7,DE\n\n", 86_400);
        let mut store = requests_from_csv(&csv).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.all()[0].country, Country::new("DE"));
    }

    #[test]
    fn labels_round_trip() {
        let mut labels = AbuseLabels::new();
        labels.insert(
            UserId(10),
            AbuseInfo {
                created: SimDate::ymd(4, 10),
                detected: SimDate::ymd(4, 12),
            },
        );
        labels.insert(
            UserId(7),
            AbuseInfo {
                created: SimDate::ymd(3, 1),
                detected: SimDate::ymd(3, 1),
            },
        );
        let csv = labels_to_csv(&labels);
        let back = labels_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(UserId(10)).unwrap().detected, SimDate::ymd(4, 12));
        // Output is sorted by user id for determinism.
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[1].starts_with("7,"));
    }

    #[test]
    fn labels_csv_rejects_inconsistencies() {
        let base = format!("{LABELS_HEADER}\n");
        assert!(
            labels_from_csv(&format!("{base}1,50,40")).is_err(),
            "detected < created"
        );
        assert!(
            labels_from_csv(&format!("{base}1,400,401")).is_err(),
            "beyond 2020"
        );
        assert!(
            labels_from_csv(&format!("{base}1,2")).is_err(),
            "missing field"
        );
    }
}
