//! Renewal-process arithmetic for address assignments.
//!
//! Every lease-like assignment in the model — a home's public IPv4 address,
//! a delegated IPv6 prefix, a mobile device's /64 — is a *renewal process*:
//! the assignment changes every `period` days, where the period is drawn
//! per entity from a log-normal around the network's configured mean, and
//! the phase is uniform. "Which assignment epoch is entity X in on day D?"
//! is then O(1):
//!
//! ```text
//! epoch(D) = (D + phase) / period
//! ```
//!
//! Address *lifespans* (Figures 5 and 6) fall out of the period
//! distribution: an assignment first observed on the first day of its epoch
//! lives `period` days. Log-normal periods give the paper's mix of
//! fast-churning and sticky assignments.

use ipv6_study_stats::dist::{lognormal, uniform_range};
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::SimDate;

/// A per-entity renewal schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Renewal {
    /// Days between assignment changes (≥ 1).
    pub period: u32,
    /// Phase offset in `[0, period)`.
    pub phase: u32,
}

impl Renewal {
    /// Derives the schedule for an entity from a pre-mixed seed, a mean
    /// period in days, and a log-normal shape `sigma` (0 = deterministic
    /// period).
    ///
    /// Periods are clamped to `[1, 3650]`.
    pub fn derive(entity_seed: u64, mean_days: f64, sigma: f64) -> Self {
        let mut h = StableHasher::new(0x5045_5249); // "PERI"
        h.write_u64(entity_seed);
        let hp = h.finish();
        let mean = mean_days.max(1.0);
        // Parameterize so the log-normal's *mean* (not median) is `mean`:
        // E[lognormal(mu, s)] = exp(mu + s²/2)  =>  mu = ln(mean) − s²/2.
        let mu = mean.ln() - sigma * sigma / 2.0;
        let period = lognormal(hp, mu, sigma).round().clamp(1.0, 3650.0) as u32;
        let mut h2 = StableHasher::new(0x5048_4153); // "PHAS"
        h2.write_u64(entity_seed);
        let phase = uniform_range(h2.finish(), u64::from(period)) as u32;
        Self { period, phase }
    }

    /// The epoch index containing `day`.
    pub fn epoch(&self, day: SimDate) -> u32 {
        (u32::from(day.index()) + self.phase) / self.period
    }

    /// The first day of the epoch containing `day` (clamped to day 0: the
    /// epoch may have started before the simulated year).
    pub fn epoch_start(&self, day: SimDate) -> SimDate {
        let e = self.epoch(day);
        let start = (e * self.period).saturating_sub(self.phase);
        SimDate::from_index(start.min(u32::from(day.index())) as u16)
    }

    /// Days since the epoch containing `day` began (0 on its first day).
    pub fn age_on(&self, day: SimDate) -> u32 {
        (u32::from(day.index()) + self.phase) % self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::hash::stable_hash64;

    #[test]
    fn epochs_advance_by_period() {
        let r = Renewal {
            period: 7,
            phase: 3,
        };
        let d0 = SimDate::from_index(0);
        assert_eq!(r.epoch(d0), 0);
        // Epoch boundary at day index 4 (4 + 3 = 7).
        assert_eq!(r.epoch(SimDate::from_index(3)), 0);
        assert_eq!(r.epoch(SimDate::from_index(4)), 1);
        assert_eq!(r.epoch(SimDate::from_index(10)), 1);
        assert_eq!(r.epoch(SimDate::from_index(11)), 2);
    }

    #[test]
    fn age_and_start_are_consistent() {
        let r = Renewal {
            period: 5,
            phase: 2,
        };
        for idx in 0..200u16 {
            let d = SimDate::from_index(idx);
            let age = r.age_on(d);
            assert!(age < 5);
            let start = r.epoch_start(d);
            assert!(start <= d);
            // Age equals the distance to the epoch start, except when the
            // epoch started before day 0 (then start clamps to 0).
            if u32::from(d.index()) >= age {
                assert_eq!(
                    u32::from(d.days_since(start)),
                    age.min(u32::from(d.index()))
                );
            }
        }
    }

    #[test]
    fn derived_periods_match_mean() {
        let n = 20_000;
        let mean = 10.0;
        let sum: f64 = (0..n)
            .map(|i| {
                let seed = stable_hash64(1, &(i as u64).to_le_bytes());
                Renewal::derive(seed, mean, 0.8).period as f64
            })
            .sum();
        let got = sum / n as f64;
        // Rounding + clamping to ≥1 biases slightly; allow 10%.
        assert!((got - mean).abs() / mean < 0.10, "mean period {got}");
    }

    #[test]
    fn zero_sigma_is_deterministic_period() {
        let r = Renewal::derive(42, 7.0, 0.0);
        assert_eq!(r.period, 7);
        assert!(r.phase < 7);
    }

    #[test]
    fn phase_spreads_entities() {
        // Different entities should not all renew on the same day.
        let mut phases = std::collections::HashSet::new();
        for i in 0..100u64 {
            let r = Renewal::derive(stable_hash64(2, &i.to_le_bytes()), 30.0, 0.0);
            phases.insert(r.phase);
        }
        assert!(phases.len() > 10, "expected spread, got {}", phases.len());
    }
}
