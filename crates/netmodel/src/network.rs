//! A network (one ASN) and its deterministic address assignment.
//!
//! [`Network::v4_address`] and [`Network::v6_address`] answer: *given this
//! attachment (user/device/household), what source address does the
//! platform see on this day?* Both are pure functions of the network
//! definition, the attachment keys, and the date — the whole simulated
//! internet is replayable from the world seed.

use std::net::{Ipv4Addr, Ipv6Addr};

use ipv6_study_netaddr::{Ipv6Prefix, MacAddr};
use ipv6_study_stats::dist::{uniform_range, Zipf};
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::{Asn, Country, SimDate};

use crate::conf::{V4Conf, V4Mode, V6Conf, V6Mode};
use crate::epoch::Renewal;
use crate::kind::NetworkKind;

/// Number of delegation regions per residential ISP (each region owns a
/// /44-sized block of delegated prefixes). Large ISPs fill regions densely,
/// creating the sub-/48 user aggregation of Figure 9; small ISPs stay
/// sparse.
pub const PD_REGIONS: u64 = 512;

/// Number of /44-level aggregation regions for mobile /64 allocation
/// (PGW/SGW pools). Concentrating mobile /64s below a few dozen /44s
/// reproduces Figure 9's sub-/48 user aggregation on the mobile side too.
pub const MOBILE_P64_REGIONS: u64 = 48;

/// Egress addresses per CGN region (subscribers cycle within their
/// region's pool, not the carrier's whole pool).
pub const CGN_REGION_SIZE: usize = 256;

/// Builds a /64 index (the 32 bits between a /32 routing prefix and the
/// IID) whose top 12 bits are confined to one of [`MOBILE_P64_REGIONS`]
/// regions.
fn regional_p64_index(region_hash: u64, within_hash: u64) -> u64 {
    let region = uniform_range(region_hash, MOBILE_P64_REGIONS);
    (region << 20) | uniform_range(within_hash, 1 << 20)
}

/// Index of a network within its [`crate::world::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetworkId(pub u32);

/// A rejected [`NetworkSpec`] — the config-reachable construction failures
/// that [`Network::try_new`] reports instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The declared v4 pool size does not fit in the pool prefix.
    PoolExceedsPrefix {
        /// Network name.
        name: String,
        /// Declared pool size.
        pool_size: u32,
        /// Addresses the pool prefix can actually hold.
        capacity: u64,
    },
    /// A v4 pool of size zero.
    EmptyPool {
        /// Network name.
        name: String,
    },
    /// An IPv6 policy was declared but the deployment ratio and ramp are
    /// both zero — no subscriber could ever use it.
    V6WithoutDeployment {
        /// Network name.
        name: String,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Wording must keep the "pool_size exceeds" phrase: callers
            // (and a should_panic test) match on it.
            Self::PoolExceedsPrefix {
                name,
                pool_size,
                capacity,
            } => write!(
                f,
                "network {name}: v4 pool_size exceeds pool prefix capacity \
                 ({pool_size} > {capacity})"
            ),
            Self::EmptyPool { name } => {
                write!(f, "network {name}: v4 pool must be non-empty")
            }
            Self::V6WithoutDeployment { name } => write!(
                f,
                "network {name}: v6 policy declared with zero deployment \
                 ratio and zero ramp"
            ),
        }
    }
}

impl std::error::Error for NetworkError {}

/// The entity keys identifying one attachment to a network.
///
/// Which key matters depends on the assignment mode: home NAT keys on the
/// household, CGN on the device, enterprise NAT on the company (passed in
/// `household`), hosting egress on the user session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttachKeys {
    /// Platform user id raw value.
    pub user: u64,
    /// Device id raw value.
    pub device: u64,
    /// Household id (or company id on enterprise networks).
    pub household: u64,
}

/// One autonomous system with its address-assignment policies.
#[derive(Debug, Clone)]
pub struct Network {
    /// Index within the world.
    pub id: NetworkId,
    /// The AS number (real for named networks, from the private range for
    /// synthetic filler networks).
    pub asn: Asn,
    /// Human-readable name.
    pub name: String,
    /// Network type.
    pub kind: NetworkKind,
    /// Country whose users this network serves.
    pub country: Country,
    /// Relative subscriber weight within (country, kind).
    pub weight: f64,
    /// Fraction of subscribers with working IPv6 at day 0.
    pub v6_base_ratio: f64,
    /// Linear deployment ramp (fraction/day) added to the base ratio —
    /// models secular rollouts like Belarus's 2020 push (Appendix A.2).
    pub v6_ramp_per_day: f64,
    /// IPv4 policy.
    pub v4: V4Conf,
    /// IPv6 policy, when the network deploys IPv6 at all.
    pub v6: Option<V6Conf>,
    /// Heavy-tailed egress popularity for pooled v4 modes. For CGNs this
    /// spans one *region* (subscribers attach through a regional gateway
    /// whose hot egresses recur day over day); for shared egress it spans
    /// the whole pool.
    v4_pool_zipf: Option<Zipf>,
    /// Heavy-tailed PoP popularity for hosting v6 egress.
    v6_pop_zipf: Option<Zipf>,
}

/// Builder parameters for [`Network::new`].
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// AS number.
    pub asn: Asn,
    /// Name.
    pub name: String,
    /// Kind.
    pub kind: NetworkKind,
    /// Country served.
    pub country: Country,
    /// Subscriber weight within (country, kind).
    pub weight: f64,
    /// IPv6 deployment ratio at day 0 (0 = no IPv6).
    pub v6_base_ratio: f64,
    /// IPv6 deployment ramp per day.
    pub v6_ramp_per_day: f64,
    /// IPv4 policy.
    pub v4: V4Conf,
    /// IPv6 policy.
    pub v6: Option<V6Conf>,
}

impl Network {
    /// Materializes a network, precomputing its popularity tables.
    ///
    /// # Panics
    /// Panics if the v4 pool size exceeds the pool prefix, or a v6 policy
    /// is declared with a zero deployment ratio. Use [`Network::try_new`]
    /// for spec values that come from configuration.
    pub fn new(id: NetworkId, spec: NetworkSpec) -> Self {
        // invariant: callers of `new` (the standard world builder and
        // tests) construct specs that are valid by construction; a failure
        // here is a bug in the builder, not bad user input.
        Self::try_new(id, spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Materializes a network, rejecting config-reachable invalid specs
    /// instead of panicking.
    pub fn try_new(id: NetworkId, spec: NetworkSpec) -> Result<Self, NetworkError> {
        let capacity = 1u64 << (32 - spec.v4.pool.len());
        if u64::from(spec.v4.pool_size) > capacity {
            return Err(NetworkError::PoolExceedsPrefix {
                name: spec.name,
                pool_size: spec.v4.pool_size,
                capacity,
            });
        }
        if spec.v4.pool_size == 0 {
            return Err(NetworkError::EmptyPool { name: spec.name });
        }
        if spec.v6.is_some() && spec.v6_base_ratio <= 0.0 && spec.v6_ramp_per_day <= 0.0 {
            return Err(NetworkError::V6WithoutDeployment { name: spec.name });
        }
        let v4_pool_zipf = match spec.v4.mode {
            V4Mode::Cgn => Some(Zipf::new(
                (spec.v4.pool_size as usize).min(CGN_REGION_SIZE),
                1.05,
            )),
            V4Mode::SharedEgress => Some(Zipf::new(spec.v4.pool_size as usize, 0.7)),
            V4Mode::HomeNat | V4Mode::EnterpriseNat => None,
        };
        let v6_pop_zipf = spec.v6.as_ref().and_then(|v6| match v6.mode {
            V6Mode::HostingEgress { pops } => Some(Zipf::new(usize::from(pops.max(1)), 0.8)),
            _ => None,
        });
        Ok(Self {
            id,
            asn: spec.asn,
            name: spec.name,
            kind: spec.kind,
            country: spec.country,
            weight: spec.weight,
            v6_base_ratio: spec.v6_base_ratio,
            v6_ramp_per_day: spec.v6_ramp_per_day,
            v4: spec.v4,
            v6: spec.v6,
            v4_pool_zipf,
            v6_pop_zipf,
        })
    }

    /// Mixes a domain tag and entity into a per-network seed.
    fn seed(&self, tag: u32, entity: u64) -> u64 {
        let mut h = StableHasher::new(u64::from(self.id.0) << 32 | u64::from(tag));
        h.write_u64(entity);
        h.finish()
    }

    /// Mixes a tag, entity and date-dependent parts into a draw hash.
    fn draw(&self, tag: u32, entity: u64, a: u64, b: u64) -> u64 {
        let mut h = StableHasher::new(u64::from(self.id.0) << 32 | u64::from(tag));
        h.write_u64(entity).write_u64(a).write_u64(b);
        h.finish()
    }

    /// IPv6 deployment ratio on a given day (base + ramp, clamped to 1).
    pub fn v6_ratio_on(&self, day: SimDate) -> f64 {
        if self.v6.is_none() {
            return 0.0;
        }
        (self.v6_base_ratio + self.v6_ramp_per_day * f64::from(day.index())).clamp(0.0, 1.0)
    }

    /// Whether this subscriber (keyed by household/company/user as
    /// appropriate) has working IPv6 on `day`. Monotone in time: once a
    /// subscriber's threshold is crossed by the ramp, it stays crossed.
    pub fn subscriber_has_v6(&self, subscriber_key: u64, day: SimDate) -> bool {
        let ratio = self.v6_ratio_on(day);
        if ratio <= 0.0 {
            return false;
        }
        let u = ipv6_study_stats::dist::uniform01(self.seed(0x7636_5355, subscriber_key));
        u < ratio
    }

    // ------------------------------------------------------------------
    // IPv4
    // ------------------------------------------------------------------

    /// The public IPv4 address this attachment egresses from on `day`,
    /// during intra-day cycle `cycle` (0 = the first address of the day;
    /// CGNs may cycle clients to `cycle` 1, 2, … within a day).
    pub fn v4_address(&self, keys: &AttachKeys, day: SimDate, cycle: u32) -> Ipv4Addr {
        let idx = match self.v4.mode {
            V4Mode::HomeNat => {
                let r = Renewal::derive(
                    self.seed(0x7634_4C53, keys.household),
                    self.v4.lease_mean_days,
                    self.v4.lease_sigma,
                );
                let epoch = r.epoch(day);
                uniform_range(
                    self.draw(0x7634_4844, keys.household, u64::from(epoch), 0),
                    u64::from(self.v4.pool_size),
                ) as u32
            }
            V4Mode::EnterpriseNat => {
                let r = Renewal::derive(
                    self.seed(0x7634_454E, keys.household),
                    self.v4.lease_mean_days,
                    self.v4.lease_sigma,
                );
                let epoch = r.epoch(day);
                uniform_range(
                    self.draw(0x7634_4549, keys.household, u64::from(epoch), 0),
                    u64::from(self.v4.pool_size),
                ) as u32
            }
            V4Mode::Cgn => {
                // The subscriber attaches through a stable regional
                // gateway (keyed on the household: one locale). Each
                // (device, lease epoch, cycle) lands on a popularity-
                // weighted egress within the region — hot egresses recur
                // day over day, which is what gives IPv4 blocklisting its
                // next-day recall (§7.1) even while individual
                // (user, address) pairs churn.
                let regions = (self.v4.pool_size as u64 / CGN_REGION_SIZE as u64).max(1);
                // Ordinary subscribers stay in one region (cycle/8 == 0);
                // extreme address churners (§5.1.3) burn through enough
                // cycles to hop regions, which is how they reach hundreds
                // of distinct addresses a week.
                let region = uniform_range(
                    self.draw(0x7634_5247, keys.household, u64::from(cycle / 8), 0),
                    regions,
                );
                let r = Renewal::derive(
                    self.seed(0x7634_4347, keys.device),
                    self.v4.lease_mean_days,
                    self.v4.lease_sigma,
                );
                let epoch = r.epoch(day);
                let h = self.draw(0x7634_4358, keys.device, u64::from(epoch), u64::from(cycle));
                // invariant: try_new builds v4_pool_zipf for every
                // Cgn-mode network; this branch is Cgn-only.
                let within = self.v4_pool_zipf.as_ref().expect("CGN has zipf").sample(h) as u64;
                (region * CGN_REGION_SIZE as u64 + within) as u32
            }
            V4Mode::SharedEgress => {
                let h = self.draw(
                    0x7634_5345,
                    keys.user,
                    u64::from(day.index()),
                    u64::from(cycle),
                );
                // invariant: try_new builds v4_pool_zipf for every
                // SharedEgress-mode network; this branch is its only user.
                self.v4_pool_zipf
                    .as_ref()
                    .expect("shared egress has zipf")
                    .sample(h) as u32
            }
        };
        self.pick_v4(idx)
    }

    fn pick_v4(&self, idx: u32) -> Ipv4Addr {
        Ipv4Addr::from(self.v4.pool.bits() | (idx % self.v4.pool_size.max(1)))
    }

    // ------------------------------------------------------------------
    // IPv6
    // ------------------------------------------------------------------

    /// The /64 network this attachment sits in on `day` for intra-day
    /// attach `attach`, or `None` when the network has no IPv6 policy.
    ///
    /// (Whether the *subscriber* has IPv6 is a separate question — see
    /// [`Network::subscriber_has_v6`] — decided by the caller.)
    pub fn v6_network64(&self, keys: &AttachKeys, day: SimDate, attach: u32) -> Option<Ipv6Prefix> {
        let v6 = self.v6.as_ref()?;
        let routing_bits = v6.routing.bits();
        let p64 = match v6.mode {
            V6Mode::ResidentialPd => {
                // Household delegated prefix, allocated two-level: the
                // household's *region* (think CMTS/aggregation router,
                // owning a /44-sized block) is stable for the household;
                // prefix churn re-draws only the within-region index. This
                // is what aggregates one household's — and one heavy
                // user's — prefixes below /48 (§5.2.1, §5.2.3) while
                // keeping /48s sparse.
                let r = Renewal::derive(
                    self.seed(0x7636_5044, keys.household),
                    v6.pd_mean_days,
                    v6.pd_sigma,
                );
                let epoch = r.epoch(day);
                let region = uniform_range(self.seed(0x7636_5247, keys.household), PD_REGIONS);
                let region_size = 1u64 << u32::from(v6.pd_len.max(44) - 44).min(63);
                let within = uniform_range(
                    self.draw(0x7636_5049, keys.household, u64::from(epoch), 0),
                    region_size,
                );
                let pd_index = region * region_size + within;
                let pd = routing_bits | (u128::from(pd_index) << (128 - v6.pd_len));
                // Subnet bits between pd_len and /64 are zero (single LAN).
                Ipv6Prefix::from_bits(pd, 64)
            }
            V6Mode::MobilePerDevice => {
                // The device homes on a PGW region (stable); the /64
                // within the region renews every few days, plus ephemeral
                // /64s from extra attaches.
                let region_hash = self.seed(0x7636_5247, keys.device);
                let idx = if attach == 0 {
                    let r =
                        Renewal::derive(self.seed(0x7636_3634, keys.device), v6.p64_mean_days, 0.6);
                    let epoch = r.epoch(day);
                    regional_p64_index(
                        region_hash,
                        self.draw(0x7636_3649, keys.device, u64::from(epoch), 0),
                    )
                } else {
                    regional_p64_index(
                        region_hash,
                        self.draw(
                            0x7636_3645,
                            keys.device,
                            u64::from(day.index()),
                            u64::from(attach),
                        ),
                    )
                };
                Ipv6Prefix::from_bits(routing_bits | (u128::from(idx) << 64), 64)
            }
            V6Mode::MobileSector { sectors } => {
                // The device roams between sectors on a multi-day renewal;
                // each sector owns one /64 shared by its devices.
                let r = Renewal::derive(self.seed(0x7636_5345, keys.device), v6.p64_mean_days, 0.5);
                let sector = uniform_range(
                    self.draw(0x7636_5343, keys.device, u64::from(r.epoch(day)), 0),
                    u64::from(sectors.max(1)),
                );
                let block = regional_p64_index(
                    self.seed(0x7636_5352, sector),
                    self.draw(0x7636_5342, sector, 0, 0),
                );
                Ipv6Prefix::from_bits(routing_bits | (u128::from(block) << 64), 64)
            }
            V6Mode::Gateway { gateways, .. } => {
                let gw = uniform_range(
                    self.seed(0x7636_4757, keys.user),
                    u64::from(gateways.max(1)),
                );
                // The gateway /64: routing bits plus a fixed 32-bit block
                // id. Its /112 extension is all-zero (the signature).
                let block = self.draw(0x7636_4742, gw, 0, 0) & 0xFFFF_FFFF;
                Ipv6Prefix::from_bits(routing_bits | (u128::from(block) << 64), 64)
            }
            V6Mode::HostingEgress { .. } => {
                // invariant: try_new builds v6_pop_zipf for every
                // HostingEgress-mode v6 policy; this branch is its only
                // user.
                let pop = self
                    .v6_pop_zipf
                    .as_ref()
                    .expect("hosting has pop zipf")
                    .sample(self.draw(0x7636_504F, keys.user, u64::from(day.index()), 0))
                    as u64;
                let block = self.draw(0x7636_5042, pop, 0, 0) & 0xFFFF_FFFF;
                Ipv6Prefix::from_bits(routing_bits | (u128::from(block) << 64), 64)
            }
        };
        Some(p64)
    }

    /// The full IPv6 source address for this attachment.
    ///
    /// * `attach` — intra-day attach index (mobile reattaches).
    /// * `iid_slot` — intra-day privacy-IID rotation slot (0 for the first
    ///   temporary address of the day).
    /// * `eui64_mac` — when the device uses EUI-64 addressing instead of
    ///   privacy IIDs, its MAC (the IID then embeds it, §4.4).
    pub fn v6_address(
        &self,
        keys: &AttachKeys,
        day: SimDate,
        attach: u32,
        iid_slot: u32,
        eui64_mac: Option<MacAddr>,
    ) -> Option<Ipv6Addr> {
        let v6 = self.v6.as_ref()?;
        let p64 = self.v6_network64(keys, day, attach)?;
        let iid: u64 = match v6.mode {
            V6Mode::Gateway {
                gateways,
                egress_per_gateway,
            } => {
                // Zero except the low 16 bits: the §6.1.3 signature. Each
                // gateway exposes only `egress_per_gateway` active slots,
                // so its users pile onto a few addresses — the mechanism
                // behind the mega-populated IPv6 addresses.
                let gw = uniform_range(
                    self.seed(0x7636_4757, keys.user),
                    u64::from(gateways.max(1)),
                );
                let slot = uniform_range(
                    self.draw(0x7636_474C, keys.user, u64::from(day.index()), 0),
                    u64::from(egress_per_gateway.max(1)),
                );
                uniform_range(self.draw(0x7636_4753, gw, slot, 0), 0xFFFF) + 1
            }
            V6Mode::HostingEgress { .. } => {
                // Server-style low-byte variation: ~4k egress addresses
                // per PoP /64, "multiple servers sharing the same long
                // prefix" (§5.2.1).
                uniform_range(
                    self.draw(
                        0x7636_484C,
                        keys.user,
                        u64::from(day.index()),
                        u64::from(attach),
                    ),
                    4096,
                ) + 1
            }
            V6Mode::ResidentialPd | V6Mode::MobilePerDevice | V6Mode::MobileSector { .. } => {
                if let Some(mac) = eui64_mac {
                    mac.to_modified_eui64()
                } else {
                    // RFC 4941 temporary IID: a fresh 64-bit value per
                    // rotation epoch. Rotations are daily (slot folds in
                    // extra intra-day rotations when configured); a
                    // configured rate of 0 freezes the IID entirely (the
                    // "privacy extensions off" ablation).
                    let (epoch, slots) = if v6.iid_rotations_per_day <= 0.0 {
                        (0u64, 0u64)
                    } else {
                        (
                            u64::from(day.index()),
                            (u64::from(attach) << 32) | u64::from(iid_slot),
                        )
                    };
                    let h = self.draw(0x7636_4949, keys.device, epoch, slots);
                    // A random 64-bit IID is never the low16 signature in
                    // practice; keep it that way explicitly.
                    h | (1 << 17)
                }
            }
        };
        Some(Ipv6Addr::from(p64.bits() | u128::from(iid)))
    }

    /// A rented server's stable IPv6 address on a hosting network.
    ///
    /// Hosting customers receive a /56-sized allocation (keyed by
    /// `customer`); each server sits in its own /64 within it, with a
    /// server-style low-byte IID — "multiple servers sharing the same long
    /// prefix" (§5.2.1). Addresses are stable across days, unlike the VPN
    /// egress path. Returns `None` off hosting networks or without IPv6.
    pub fn v6_server_address(&self, customer: u64, server: u64) -> Option<Ipv6Addr> {
        let v6 = self.v6.as_ref()?;
        if !matches!(v6.mode, V6Mode::HostingEgress { .. }) {
            return None;
        }
        let block56 = self.draw(0x7636_5343, customer, 0, 0) & 0xFF_FFFF; // /56 index: 24 bits
        let p56 = v6.routing.bits() | (u128::from(block56) << 72);
        let p64 = p56 | (u128::from(server & 0xFF) << 64);
        let iid = uniform_range(self.draw(0x7636_5349, customer, server, 0), 4096) + 1;
        Some(Ipv6Addr::from(p64 | u128::from(iid)))
    }

    /// A rented server's stable IPv4 address on a hosting network.
    pub fn v4_server_address(&self, customer: u64, server: u64) -> Ipv4Addr {
        let idx = uniform_range(
            self.draw(0x7634_5343, customer, server, 0),
            u64::from(self.v4.pool_size),
        );
        self.pick_v4(idx as u32)
    }

    /// Expected number of intra-day extra IPv4 cycles (CGN only; 0 for
    /// other modes). The behavior crate draws a Poisson with this mean.
    pub fn v4_intra_day_cycles(&self) -> f64 {
        match self.v4.mode {
            V4Mode::Cgn => self.v4.intra_day_cycles,
            V4Mode::SharedEgress => self.v4.intra_day_cycles,
            _ => 0.0,
        }
    }

    /// Expected number of intra-day extra /64 attaches on v6 (mobile only).
    pub fn v6_intra_day_attaches(&self) -> f64 {
        self.v6.as_ref().map_or(0.0, |v6| match v6.mode {
            V6Mode::MobilePerDevice => v6.intra_day_p64,
            _ => 0.0,
        })
    }

    /// Privacy-IID rotations per day (0 when the mode has no privacy IIDs).
    pub fn v6_iid_rotations(&self) -> f64 {
        self.v6.as_ref().map_or(0.0, |v6| v6.iid_rotations_per_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(kind: NetworkKind, v4: V4Conf, v6: Option<V6Conf>) -> Network {
        Network::new(
            NetworkId(7),
            NetworkSpec {
                asn: Asn(64512),
                name: "TestNet".into(),
                kind,
                country: Country::new("US"),
                weight: 1.0,
                v6_base_ratio: if v6.is_some() { 0.8 } else { 0.0 },
                v6_ramp_per_day: 0.0,
                v4,
                v6,
            },
        )
    }

    fn res_net() -> Network {
        mk(
            NetworkKind::Residential,
            V4Conf::home("11.0.0.0/16".parse().unwrap(), 40_000, 30.0),
            Some(V6Conf::residential(
                "2a00:100::/32".parse().unwrap(),
                56,
                60.0,
            )),
        )
    }

    fn keys(u: u64) -> AttachKeys {
        AttachKeys {
            user: u,
            device: u * 10,
            household: u / 2,
        }
    }

    fn day(m: u8, d: u8) -> SimDate {
        SimDate::ymd(m, d)
    }

    #[test]
    fn v4_home_is_stable_within_lease_and_shared_by_household() {
        let n = res_net();
        let a = n.v4_address(&keys(4), day(4, 13), 0);
        let b = n.v4_address(&keys(4), day(4, 13), 0);
        assert_eq!(a, b, "deterministic");
        // Same household (5/2 == 4/2 == 2), same address.
        let c = n.v4_address(&keys(5), day(4, 13), 0);
        assert_eq!(a, c, "household members share the home NAT egress");
        // Address is inside the pool.
        assert!(n.v4.pool.contains_addr(a));
    }

    #[test]
    fn v4_lease_changes_across_epochs() {
        let n = res_net();
        // Over a year of days, a 30-day mean lease must change sometimes.
        let mut addrs = std::collections::HashSet::new();
        for idx in 0..360u16 {
            addrs.insert(n.v4_address(&keys(42), SimDate::from_index(idx), 0));
        }
        assert!(
            addrs.len() >= 2,
            "expected lease churn, got {}",
            addrs.len()
        );
        assert!(addrs.len() <= 40, "too much churn: {}", addrs.len());
    }

    #[test]
    fn v6_residential_household_shares_a_64() {
        let n = res_net();
        let d = day(4, 13);
        let a = n.v6_address(&keys(4), d, 0, 0, None).unwrap();
        let b = n.v6_address(&keys(5), d, 0, 0, None).unwrap();
        assert_ne!(a, b, "distinct devices get distinct privacy addresses");
        assert_eq!(
            Ipv6Prefix::containing(a, 64),
            Ipv6Prefix::containing(b, 64),
            "household members share the delegated /64"
        );
        // Inside the routing prefix.
        assert!(n.v6.as_ref().unwrap().routing.contains_addr(a));
    }

    #[test]
    fn v6_privacy_iid_rotates_daily() {
        let n = res_net();
        let a = n.v6_address(&keys(4), day(4, 13), 0, 0, None).unwrap();
        let b = n.v6_address(&keys(4), day(4, 14), 0, 0, None).unwrap();
        assert_ne!(a, b, "new temporary address each day");
        // But both stay in the same /64 while the delegation persists
        // (60-day mean; these two days are adjacent so usually same epoch
        // — assert same /48 at least, which survives any epoch roll).
        assert_eq!(Ipv6Prefix::containing(a, 32), Ipv6Prefix::containing(b, 32));
    }

    #[test]
    fn v6_eui64_is_stable_and_detectable() {
        use ipv6_study_netaddr::IidClass;
        let n = res_net();
        let mac = MacAddr::new([0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde]);
        let a = n.v6_address(&keys(4), day(4, 13), 0, 0, Some(mac)).unwrap();
        let b = n.v6_address(&keys(4), day(4, 14), 0, 0, Some(mac)).unwrap();
        // IID identical across days (static MAC).
        assert_eq!(u128::from(a) as u64, u128::from(b) as u64);
        assert!(IidClass::classify(a).is_mac_embedded());
    }

    #[test]
    fn mobile_keeps_home_p64_within_epoch_and_rotates_ephemerals() {
        let n = mk(
            NetworkKind::Mobile,
            V4Conf::cgn("100.64.0.0/24".parse().unwrap(), 64, 1.0),
            Some(V6Conf::mobile("2a00:200::/32".parse().unwrap(), 4.0, 0.5)),
        );
        let d = day(4, 13);
        let home1 = n.v6_network64(&keys(4), d, 0).unwrap();
        let home2 = n.v6_network64(&keys(4), d, 0).unwrap();
        assert_eq!(home1, home2);
        let eph = n.v6_network64(&keys(4), d, 1).unwrap();
        assert_ne!(home1, eph, "extra attaches land in fresh /64s");
        assert_eq!(home1.len(), 64);
    }

    #[test]
    fn gateway_mode_produces_signature_addresses() {
        use ipv6_study_netaddr::IidClass;
        let n = mk(
            NetworkKind::Mobile,
            V4Conf::cgn("100.66.0.0/24".parse().unwrap(), 64, 1.0),
            Some(V6Conf::gateway("2600:380::/32".parse().unwrap(), 4, 6)),
        );
        let d = day(4, 13);
        // Many users, few /64 blocks, signature IIDs.
        let mut blocks = std::collections::HashSet::new();
        for u in 0..500u64 {
            let a = n.v6_address(&keys(u), d, 0, 0, None).unwrap();
            assert!(
                IidClass::classify(a).is_gateway_signature(),
                "addr {a} must match low-16 signature"
            );
            blocks.insert(Ipv6Prefix::containing(a, 64));
        }
        assert!(
            blocks.len() <= 4,
            "at most `gateways` blocks, got {}",
            blocks.len()
        );
        // The /112 containing the address equals the /64 zero-extended:
        let a = n.v6_address(&keys(1), d, 0, 0, None).unwrap();
        let p112 = Ipv6Prefix::containing(a, 112);
        assert_eq!(p112.bits(), Ipv6Prefix::containing(a, 64).bits());
    }

    #[test]
    fn hosting_egress_shares_addresses_and_p64s() {
        let n = mk(
            NetworkKind::Hosting,
            V4Conf::shared_egress("13.0.0.0/24".parse().unwrap(), 128),
            Some(V6Conf::hosting("2a0d:100::/32".parse().unwrap(), 3)),
        );
        let d = day(4, 13);
        let mut p64s = std::collections::HashSet::new();
        let mut addrs = std::collections::HashSet::new();
        for u in 0..2000u64 {
            let a = n.v6_address(&keys(u), d, 0, 0, None).unwrap();
            p64s.insert(Ipv6Prefix::containing(a, 64));
            addrs.insert(a);
        }
        assert!(p64s.len() <= 3);
        assert!(
            addrs.len() < 2000,
            "egress addresses are shared: {} distinct",
            addrs.len()
        );
        assert!(addrs.len() > 100, "but not degenerate: {}", addrs.len());
    }

    #[test]
    fn cgn_cycles_produce_multiple_v4s_per_day() {
        let n = mk(
            NetworkKind::Mobile,
            V4Conf::cgn("100.64.0.0/26".parse().unwrap(), 64, 1.5),
            None,
        );
        let d = day(4, 13);
        let a0 = n.v4_address(&keys(4), d, 0);
        let a1 = n.v4_address(&keys(4), d, 1);
        // Cycles usually differ (zipf re-draw); deterministic either way.
        assert_eq!(a1, n.v4_address(&keys(4), d, 1));
        assert!(n.v4.pool.contains_addr(a0) && n.v4.pool.contains_addr(a1));
        assert!((n.v4_intra_day_cycles() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn v6_ratio_ramps_and_subscriber_flag_is_monotone() {
        let mut spec = NetworkSpec {
            asn: Asn(64512),
            name: "Ramp".into(),
            kind: NetworkKind::Residential,
            country: Country::new("BY"),
            weight: 1.0,
            v6_base_ratio: 0.10,
            v6_ramp_per_day: 0.002,
            v4: V4Conf::home("11.1.0.0/16".parse().unwrap(), 10_000, 30.0),
            v6: Some(V6Conf::residential(
                "2a00:300::/32".parse().unwrap(),
                64,
                90.0,
            )),
        };
        spec.weight = 1.0;
        let n = Network::new(NetworkId(1), spec);
        let early = n.v6_ratio_on(SimDate::ymd(1, 23));
        let late = n.v6_ratio_on(SimDate::ymd(4, 19));
        assert!(late > early + 0.1);
        // Monotone per subscriber.
        for hh in 0..200u64 {
            let a = n.subscriber_has_v6(hh, SimDate::ymd(1, 23));
            let b = n.subscriber_has_v6(hh, SimDate::ymd(4, 19));
            assert!(!a || b, "v6 must not be lost as the ramp rises");
        }
    }

    #[test]
    fn no_v6_policy_means_no_v6() {
        let n = mk(
            NetworkKind::Enterprise,
            V4Conf::enterprise("12.0.0.0/24".parse().unwrap(), 8),
            None,
        );
        assert_eq!(n.v6_address(&keys(1), day(4, 13), 0, 0, None), None);
        assert_eq!(n.v6_ratio_on(day(4, 13)), 0.0);
        assert!(!n.subscriber_has_v6(1, day(4, 13)));
    }

    #[test]
    #[should_panic(expected = "pool_size exceeds")]
    fn oversized_pool_rejected() {
        mk(
            NetworkKind::Residential,
            V4Conf::home("11.0.0.0/24".parse().unwrap(), 10_000, 30.0),
            None,
        );
    }

    fn spec(v4: V4Conf, v6: Option<V6Conf>, v6_ratio: f64) -> NetworkSpec {
        NetworkSpec {
            asn: Asn(64512),
            name: "TryNet".into(),
            kind: NetworkKind::Residential,
            country: Country::new("US"),
            weight: 1.0,
            v6_base_ratio: v6_ratio,
            v6_ramp_per_day: 0.0,
            v4,
            v6,
        }
    }

    #[test]
    fn try_new_reports_config_errors_instead_of_panicking() {
        let pool24 = "11.0.0.0/24".parse().unwrap();
        let err = Network::try_new(
            NetworkId(0),
            spec(V4Conf::home(pool24, 10_000, 30.0), None, 0.0),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NetworkError::PoolExceedsPrefix {
                pool_size: 10_000,
                capacity: 256,
                ..
            }
        ));
        assert!(err.to_string().contains("pool_size exceeds"));

        let err = Network::try_new(NetworkId(0), spec(V4Conf::home(pool24, 0, 30.0), None, 0.0))
            .unwrap_err();
        assert!(matches!(err, NetworkError::EmptyPool { .. }));

        let v6 = V6Conf::residential("2a00:100::/32".parse().unwrap(), 56, 60.0);
        let err = Network::try_new(
            NetworkId(0),
            spec(V4Conf::home(pool24, 64, 30.0), Some(v6), 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, NetworkError::V6WithoutDeployment { .. }));
        assert!(err.to_string().contains("TryNet"));
    }

    #[test]
    fn try_new_accepts_a_valid_spec() {
        let pool24 = "11.0.0.0/24".parse().unwrap();
        let n = Network::try_new(
            NetworkId(3),
            spec(V4Conf::home(pool24, 64, 30.0), None, 0.0),
        )
        .expect("valid spec");
        assert_eq!(n.id, NetworkId(3));
        assert_eq!(n.v4.pool_size, 64);
    }
}
