//! The country table: platform weights, IPv6 targets, lockdown calendar.
//!
//! Each entry carries the *observable* the paper reports — the share of the
//! country's users seen on IPv6 (Table 2 / Figure 12) in late January and
//! mid-April 2020 — plus the date the country locked down (Appendix B ties
//! the April shifts to lockdowns). The world builder inverts these targets
//! into per-network deployment ratios; see [`solve_deployment`].
//!
//! Weights approximate a global platform's user distribution (India-heavy,
//! then US/Brazil/Indonesia, long tail folded into a rest-of-world bucket).

use ipv6_study_telemetry::{Country, SimDate};

/// Baseline probability that a user has a home-network session on a given
/// (pre-lockdown, weekday) day. Shared with the behavior crate so the
/// deployment solver and the activity model agree.
pub const P_HOME_BASELINE: f64 = 0.75;
/// Baseline probability of a mobile-network session on such a day.
pub const P_MOBILE_BASELINE: f64 = 0.70;

/// One country's profile.
#[derive(Debug, Clone)]
pub struct CountryProfile {
    /// ISO code.
    pub country: Country,
    /// Share of platform users in this country.
    pub weight: f64,
    /// Lockdown start, when the country locked down inside the window.
    pub lockdown: Option<SimDate>,
    /// Observed IPv6 user share, week of Jan 23–29 (target).
    pub v6_jan: f64,
    /// Observed IPv6 user share, week of Apr 13–19 (target).
    pub v6_apr: f64,
    /// Ratio of mobile to residential deployment. >1: mobile leads
    /// (US/India-style); <1: residential leads (Germany-style, which makes
    /// lockdowns *raise* the national IPv6 share as users shift home).
    pub mobile_skew: f64,
}

impl CountryProfile {
    fn new(
        code: &str,
        weight: f64,
        lockdown: Option<(u8, u8)>,
        v6_jan: f64,
        v6_apr: f64,
        mobile_skew: f64,
    ) -> Self {
        Self {
            country: Country::new(code),
            weight,
            lockdown: lockdown.map(|(m, d)| SimDate::ymd(m, d)),
            v6_jan,
            v6_apr,
            mobile_skew,
        }
    }
}

/// Residential deployment ratio `r` such that, with mobile deployment
/// `skew·r` (clamped to 0.97) and the baseline session probabilities, the
/// expected share of users touching IPv6 on a day equals `target`:
///
/// ```text
/// 1 − (1 − P_HOME·r)(1 − P_MOBILE·min(0.97, skew·r)) = target
/// ```
///
/// Solved by bisection; saturates at 1.0 when the target is unreachable.
pub fn solve_deployment(target: f64, skew: f64) -> f64 {
    let predicted = |r: f64| -> f64 {
        let mob = (skew * r).clamp(0.0, 0.97);
        1.0 - (1.0 - P_HOME_BASELINE * r) * (1.0 - P_MOBILE_BASELINE * mob)
    };
    if predicted(1.0) <= target {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if predicted(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// The standard country table. Targets reproduce Table 2's top-10 (India,
/// US, Belgium, Vietnam, Greece, Taiwan, Brazil, Malaysia, Germany/Portugal,
/// Finland) and the three country case studies of Appendix A.2: Germany's
/// +19.4pp (residential-led, lockdown Mar 22), Belarus's steady +15.2pp
/// deployment push, and Puerto Rico's −15.5pp (mobile-led, lockdown).
pub fn standard_countries() -> Vec<CountryProfile> {
    let c = CountryProfile::new;
    vec![
        c("IN", 0.140, Some((3, 25)), 0.834, 0.838, 1.25),
        c("US", 0.090, Some((3, 19)), 0.722, 0.738, 1.25),
        c("ID", 0.060, Some((4, 10)), 0.060, 0.050, 1.40),
        c("BR", 0.060, Some((3, 24)), 0.665, 0.629, 1.25),
        c("MX", 0.040, Some((3, 23)), 0.320, 0.310, 1.30),
        c("PH", 0.035, Some((3, 15)), 0.140, 0.130, 1.40),
        c("VN", 0.030, Some((4, 1)), 0.712, 0.707, 1.20),
        c("TH", 0.025, Some((3, 26)), 0.440, 0.430, 1.30),
        c("EG", 0.020, Some((3, 25)), 0.050, 0.050, 1.40),
        c("BD", 0.020, Some((3, 26)), 0.100, 0.090, 1.40),
        c("PK", 0.020, Some((3, 24)), 0.050, 0.050, 1.40),
        c("TR", 0.018, Some((3, 21)), 0.100, 0.100, 1.30),
        c("GB", 0.018, Some((3, 23)), 0.500, 0.490, 1.10),
        c("NG", 0.015, Some((3, 30)), 0.040, 0.040, 1.40),
        // Germany: residential-led (Deutsche Telekom), mobile lags badly;
        // the Jan→Apr ramp plus the lockdown produce the paper's jump.
        c("DE", 0.015, Some((3, 22)), 0.391, 0.585, 0.45),
        c("FR", 0.015, Some((3, 17)), 0.310, 0.300, 0.90),
        c("IT", 0.015, Some((3, 9)), 0.180, 0.170, 1.10),
        c("CO", 0.015, Some((3, 25)), 0.200, 0.190, 1.30),
        c("AR", 0.015, Some((3, 20)), 0.300, 0.290, 1.25),
        c("MY", 0.012, Some((3, 18)), 0.632, 0.610, 1.25),
        c("SA", 0.010, Some((3, 23)), 0.400, 0.390, 1.30),
        c("JP", 0.010, Some((4, 7)), 0.400, 0.390, 1.00),
        c("CA", 0.010, Some((3, 17)), 0.300, 0.290, 1.10),
        c("RU", 0.010, Some((3, 30)), 0.080, 0.080, 1.20),
        c("ES", 0.010, Some((3, 14)), 0.050, 0.050, 1.20),
        c("TW", 0.008, None, 0.680, 0.669, 1.20),
        c("AU", 0.008, Some((3, 23)), 0.250, 0.240, 1.20),
        c("PL", 0.008, Some((3, 13)), 0.180, 0.170, 1.20),
        c("ZA", 0.008, Some((3, 27)), 0.040, 0.040, 1.30),
        c("VE", 0.008, Some((3, 17)), 0.080, 0.080, 1.20),
        c("AE", 0.005, Some((3, 26)), 0.300, 0.290, 1.30),
        c("NL", 0.005, Some((3, 15)), 0.400, 0.390, 1.00),
        c("KR", 0.005, None, 0.180, 0.170, 1.20),
        c("GR", 0.004, Some((3, 23)), 0.731, 0.678, 1.20),
        c("PT", 0.004, Some((3, 19)), 0.551, 0.530, 1.10),
        c("BE", 0.004, Some((3, 18)), 0.702, 0.712, 1.00),
        c("FI", 0.002, Some((3, 16)), 0.551, 0.534, 1.10),
        // Puerto Rico: mobile-led IPv6, so the lockdown *drops* the share.
        c("PR", 0.004, Some((3, 15)), 0.537, 0.450, 2.40),
        // Belarus: the 2020 country-wide IPv6 mandate — a steady ramp.
        c("BY", 0.004, None, 0.150, 0.302, 1.00),
        c("CN", 0.002, None, 0.030, 0.030, 1.20),
        // Rest of world.
        c("ZZ", 0.193, Some((3, 24)), 0.100, 0.100, 1.25),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = standard_countries().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn solver_hits_targets() {
        for (t, s) in [(0.84, 1.25), (0.39, 0.45), (0.05, 1.4), (0.72, 1.25)] {
            let r = solve_deployment(t, s);
            let mob = (s * r).clamp(0.0, 0.97);
            let got = 1.0 - (1.0 - P_HOME_BASELINE * r) * (1.0 - P_MOBILE_BASELINE * mob);
            assert!((got - t).abs() < 1e-6, "target {t}: got {got}");
        }
    }

    #[test]
    fn solver_saturates_on_impossible_targets() {
        assert_eq!(solve_deployment(0.999, 1.0), 1.0);
        assert!(solve_deployment(0.0, 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_countries_have_the_paper_order() {
        let cs = standard_countries();
        let get = |code: &str| {
            cs.iter()
                .find(|c| c.country == Country::new(code))
                .unwrap()
                .v6_apr
        };
        // Table 2 (Apr 13–19): India top, then US.
        assert!(get("IN") > get("US"));
        assert!(get("US") > get("BE"));
        assert!(get("DE") > 0.55, "Germany post-jump");
        assert!(get("ID") < 0.1, "Indonesia is v4-CGN country");
    }

    #[test]
    fn germany_and_belarus_ramp_and_pr_drops() {
        let cs = standard_countries();
        let find = |code: &str| cs.iter().find(|c| c.country == Country::new(code)).unwrap();
        assert!(find("DE").v6_apr - find("DE").v6_jan > 0.15);
        assert!(find("BY").v6_apr - find("BY").v6_jan > 0.10);
        assert!(find("PR").v6_jan - find("PR").v6_apr > 0.05);
        assert!(find("BY").lockdown.is_none());
    }

    #[test]
    fn lockdowns_are_inside_the_study_window() {
        for c in standard_countries() {
            if let Some(d) = c.lockdown {
                assert!(
                    d >= SimDate::ymd(3, 1) && d <= SimDate::ymd(4, 15),
                    "{}",
                    c.country
                );
            }
        }
    }
}
