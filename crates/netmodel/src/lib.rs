//! Internet model substrate: the synthetic world whose telemetry the study
//! analyzes.
//!
//! The paper's findings are driven by *address-assignment mechanics* — NAT
//! and CGN churn on IPv4; SLAAC privacy extensions (RFC 4941), temporary
//! DHCPv6 (RFC 8415), prefix delegation, and per-device mobile /64s on IPv6
//! — composed with a realistic population of networks. This crate builds
//! that world:
//!
//! - [`kind`] — network kinds: residential, mobile, enterprise, hosting.
//! - [`epoch`] — renewal-process arithmetic: every lease/assignment has a
//!   per-entity period and phase, making "which address epoch is entity X
//!   in on day D" an O(1) pure function. Address lifespans (Figures 5–6)
//!   emerge from these periods.
//! - [`conf`] — per-network IPv4/IPv6 assignment policies.
//! - [`network`] — [`Network`]: one ASN with its policies; answers
//!   "what address does this attachment get on this day?" deterministically.
//! - [`countries`] — the country table: platform-population weights, IPv6
//!   deployment per network kind, lockdown dates (the COVID-19 calendar of
//!   §4.1/Appendix B), and secular deployment ramps (Belarus).
//! - [`world`] — [`World`]: the full network population, including the
//!   named ASNs the paper's tables surface (high-IPv6 carriers of Table 1,
//!   the gateway-mode mobile carrier behind §6.1.3's mega-populated
//!   addresses, Indonesian mega-CGNs, and hosting/VPN providers).
//!
//! Everything is hash-driven (see `ipv6_study_stats::dist`): the world and
//! all addresses are pure functions of `(seed, ids, date)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conf;
pub mod countries;
pub mod epoch;
pub mod kind;
pub mod network;
pub mod world;

pub use conf::{V4Conf, V4Mode, V6Conf, V6Mode};
pub use countries::CountryProfile;
pub use kind::NetworkKind;
pub use network::{AttachKeys, Network, NetworkError, NetworkId};
pub use world::World;
