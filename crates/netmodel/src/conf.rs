//! Per-network address-assignment policies.
//!
//! A [`V4Conf`]/[`V6Conf`] pair captures how one network hands out
//! addresses. The parameters map one-to-one onto the mechanisms the paper
//! invokes to explain its findings:
//!
//! - IPv4 NAT sharing and **CGN cycling** — "abusive accounts are sometimes
//!   forcibly cycled to new IPv4 addresses over time (even within a day)
//!   due to IPv4 address contention and NATing" (§5.1.2);
//! - IPv6 **privacy-extension rotation** — "common methods for IPv6 address
//!   assignments … provide short-lived addresses (often with daily
//!   expirations) where new addresses have randomized IIDs" (§5.1.1);
//! - **prefix delegation** — households aggregate in /64s, and a user's
//!   addresses aggregate below the routing prefix (§5.2);
//! - the **gateway** structure behind §6.1.3's mega-populated addresses.

use ipv6_study_netaddr::{Ipv4Prefix, Ipv6Prefix};

/// How a network assigns public IPv4 addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V4Mode {
    /// One public address per household (home NAT); everyone in the
    /// household shares it.
    HomeNat,
    /// Carrier-grade NAT: a pool of egress addresses shared by all
    /// subscribers; a client may be cycled across egresses within a day.
    Cgn,
    /// Corporate NAT: one sticky egress per company site.
    EnterpriseNat,
    /// Per-session shared egress (VPN/hosting exit nodes).
    SharedEgress,
}

/// IPv4 assignment policy.
#[derive(Debug, Clone, PartialEq)]
pub struct V4Conf {
    /// The network's public egress pool.
    pub pool: Ipv4Prefix,
    /// Number of usable egress addresses (≤ pool size). Small pools on
    /// large CGNs create the heavily-populated-address tail of §6.1.3.
    pub pool_size: u32,
    /// Assignment mode.
    pub mode: V4Mode,
    /// Mean days between public-address changes for a subscriber
    /// (the renewal mean; log-normal across subscribers).
    pub lease_mean_days: f64,
    /// Log-normal sigma of the lease period across subscribers.
    pub lease_sigma: f64,
    /// CGN only: expected *additional* egress addresses a client is cycled
    /// through per active day (Poisson).
    pub intra_day_cycles: f64,
}

/// How a network assigns IPv6 addresses (when deployed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum V6Mode {
    /// Residential prefix delegation: household gets a `pd_len` prefix;
    /// devices form privacy IIDs inside the household /64.
    ResidentialPd,
    /// Mobile: each device attach gets a /64 from the carrier space.
    MobilePerDevice,
    /// Mobile with sector-shared /64s: devices in the same radio
    /// sector/gateway share a /64 (common in 464XLAT-era deployments).
    /// These shared prefixes are what make a large share of observed /64s
    /// multi-user (Figure 9's 41%-single statistic) without making
    /// *addresses* multi-user — IIDs stay per-device.
    MobileSector {
        /// Number of sectors (each one /64).
        sectors: u32,
    },
    /// Mobile gateway (the §6.1.3 outlier structure): subscribers share a
    /// handful of /112-style gateway blocks; IIDs are zero except the low
    /// 16 bits, and each gateway exposes only a few egress addresses, so
    /// every address carries a large share of the gateway's users.
    Gateway {
        /// Number of gateway /112 blocks.
        gateways: u16,
        /// Active egress addresses (low-16-bit slots) per gateway.
        egress_per_gateway: u16,
    },
    /// Hosting/VPN: egress addresses inside per-PoP /64s, shared by the
    /// sessions exiting that PoP.
    HostingEgress {
        /// Number of points of presence (each a /64).
        pops: u16,
    },
}

/// IPv6 assignment policy.
#[derive(Debug, Clone, PartialEq)]
pub struct V6Conf {
    /// The network's routing prefix (a /32 here; "prefixes shorter than a
    /// /48 … are likely the global routing prefixes", §5.2.1).
    pub routing: Ipv6Prefix,
    /// Assignment mode.
    pub mode: V6Mode,
    /// Residential: delegated-prefix length (/56 and /64 are the common
    /// choices; /60 appears in some deployments).
    pub pd_len: u8,
    /// Mean days between delegated-prefix changes for a household.
    pub pd_mean_days: f64,
    /// Log-normal sigma of the delegated-prefix period.
    pub pd_sigma: f64,
    /// Mobile: mean days a device keeps its /64 across reattaches.
    pub p64_mean_days: f64,
    /// Mean extra ephemeral /64s a mobile device picks up per active day
    /// (network switches, new PDP contexts).
    pub intra_day_p64: f64,
    /// Privacy-IID rotations per day (RFC 4941 temporary addresses usually
    /// rotate daily: 1.0).
    pub iid_rotations_per_day: f64,
}

impl V4Conf {
    /// A typical home-broadband policy: one egress per household, leases
    /// averaging `lease_mean_days` days.
    pub fn home(pool: Ipv4Prefix, pool_size: u32, lease_mean_days: f64) -> Self {
        Self {
            pool,
            pool_size,
            mode: V4Mode::HomeNat,
            lease_mean_days,
            lease_sigma: 1.1,
            intra_day_cycles: 0.0,
        }
    }

    /// A carrier CGN: `pool_size` egress addresses, cycling clients
    /// `cycles` extra times per day.
    pub fn cgn(pool: Ipv4Prefix, pool_size: u32, cycles: f64) -> Self {
        Self {
            pool,
            pool_size,
            mode: V4Mode::Cgn,
            lease_mean_days: 1.0,
            lease_sigma: 0.5,
            intra_day_cycles: cycles,
        }
    }

    /// A corporate NAT: very sticky, a handful of egresses.
    pub fn enterprise(pool: Ipv4Prefix, pool_size: u32) -> Self {
        Self {
            pool,
            pool_size,
            mode: V4Mode::EnterpriseNat,
            lease_mean_days: 180.0,
            lease_sigma: 0.3,
            intra_day_cycles: 0.0,
        }
    }

    /// VPN/hosting shared egress.
    pub fn shared_egress(pool: Ipv4Prefix, pool_size: u32) -> Self {
        Self {
            pool,
            pool_size,
            mode: V4Mode::SharedEgress,
            lease_mean_days: 1.0,
            lease_sigma: 0.5,
            intra_day_cycles: 0.3,
        }
    }
}

impl V6Conf {
    /// Residential prefix delegation with privacy IIDs.
    pub fn residential(routing: Ipv6Prefix, pd_len: u8, pd_mean_days: f64) -> Self {
        Self {
            routing,
            mode: V6Mode::ResidentialPd,
            pd_len,
            pd_mean_days,
            pd_sigma: 0.7,
            p64_mean_days: 0.0,
            intra_day_p64: 0.0,
            iid_rotations_per_day: 1.0,
        }
    }

    /// Mobile with sector-shared /64s.
    pub fn mobile_sector(routing: Ipv6Prefix, sectors: u32) -> Self {
        Self {
            routing,
            mode: V6Mode::MobileSector { sectors },
            pd_len: 64,
            pd_mean_days: 0.0,
            pd_sigma: 0.0,
            p64_mean_days: 4.0,
            intra_day_p64: 0.0,
            iid_rotations_per_day: 1.0,
        }
    }

    /// Mobile per-device /64s.
    pub fn mobile(routing: Ipv6Prefix, p64_mean_days: f64, intra_day_p64: f64) -> Self {
        Self {
            routing,
            mode: V6Mode::MobilePerDevice,
            pd_len: 64,
            pd_mean_days: 0.0,
            pd_sigma: 0.0,
            p64_mean_days,
            intra_day_p64,
            iid_rotations_per_day: 1.0,
        }
    }

    /// Gateway-mode mobile (the §6.1.3 outlier carrier).
    pub fn gateway(routing: Ipv6Prefix, gateways: u16, egress_per_gateway: u16) -> Self {
        Self {
            routing,
            mode: V6Mode::Gateway {
                gateways,
                egress_per_gateway,
            },
            pd_len: 64,
            pd_mean_days: 0.0,
            pd_sigma: 0.0,
            p64_mean_days: 0.0,
            intra_day_p64: 0.0,
            iid_rotations_per_day: 0.0,
        }
    }

    /// Hosting/VPN egress inside per-PoP /64s.
    pub fn hosting(routing: Ipv6Prefix, pops: u16) -> Self {
        Self {
            routing,
            mode: V6Mode::HostingEgress { pops },
            pd_len: 64,
            pd_mean_days: 0.0,
            pd_sigma: 0.0,
            p64_mean_days: 0.0,
            intra_day_p64: 0.0,
            iid_rotations_per_day: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4pool() -> Ipv4Prefix {
        "100.64.0.0/16".parse().unwrap()
    }

    fn v6routing() -> Ipv6Prefix {
        "2a00:100::/32".parse().unwrap()
    }

    #[test]
    fn constructors_set_modes() {
        assert_eq!(V4Conf::home(v4pool(), 1000, 30.0).mode, V4Mode::HomeNat);
        assert_eq!(V4Conf::cgn(v4pool(), 16, 1.5).mode, V4Mode::Cgn);
        assert_eq!(V4Conf::enterprise(v4pool(), 4).mode, V4Mode::EnterpriseNat);
        assert_eq!(
            V4Conf::shared_egress(v4pool(), 64).mode,
            V4Mode::SharedEgress
        );
        assert_eq!(
            V6Conf::residential(v6routing(), 56, 60.0).mode,
            V6Mode::ResidentialPd
        );
        assert!(matches!(
            V6Conf::mobile(v6routing(), 3.0, 0.3).mode,
            V6Mode::MobilePerDevice
        ));
        assert!(matches!(
            V6Conf::gateway(v6routing(), 48, 12).mode,
            V6Mode::Gateway {
                gateways: 48,
                egress_per_gateway: 12
            }
        ));
        assert!(matches!(
            V6Conf::hosting(v6routing(), 20).mode,
            V6Mode::HostingEgress { pops: 20 }
        ));
    }

    #[test]
    fn residential_defaults_rotate_daily() {
        let c = V6Conf::residential(v6routing(), 56, 60.0);
        assert_eq!(c.iid_rotations_per_day, 1.0);
        assert_eq!(c.pd_len, 56);
    }
}
