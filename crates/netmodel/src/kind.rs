//! Network kinds.
//!
//! Appendix B of the paper explains the weekend and lockdown effects by the
//! mix of *network types* a user touches: "we start by assuming that users
//! are on either residential, mobile, or enterprise networks". We add
//! hosting (VPN egress and attacker infrastructure), which the paper's
//! outlier analyses surface via ASNs such as M247, OVH and DigitalOcean.

use std::fmt;

/// The four network types in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetworkKind {
    /// Home broadband: household NAT on IPv4, delegated prefix on IPv6.
    Residential,
    /// Cellular carrier: CGN on IPv4, per-device /64 (or gateway) on IPv6.
    Mobile,
    /// Corporate network: large sticky NAT, usually IPv4-only.
    Enterprise,
    /// Data-center/VPN provider: shared egress, server ranges.
    Hosting,
}

impl NetworkKind {
    /// All kinds, in a fixed order.
    pub const ALL: [NetworkKind; 4] = [
        NetworkKind::Residential,
        NetworkKind::Mobile,
        NetworkKind::Enterprise,
        NetworkKind::Hosting,
    ];
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetworkKind::Residential => "residential",
            NetworkKind::Mobile => "mobile",
            NetworkKind::Enterprise => "enterprise",
            NetworkKind::Hosting => "hosting",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_order() {
        assert_eq!(NetworkKind::Mobile.to_string(), "mobile");
        assert_eq!(NetworkKind::ALL.len(), 4);
        assert!(NetworkKind::Residential < NetworkKind::Hosting);
    }
}
