//! The world: the full population of networks the simulated users attach to.
//!
//! [`World::standard`] builds, per country, a small portfolio of residential
//! ISPs, mobile carriers and an enterprise network — with deployment ratios
//! inverted from the country's observed IPv6 user share (see
//! [`crate::countries::solve_deployment`]) — plus a global set of
//! hosting/VPN providers. Named, real-world-inspired ASNs are wired in where
//! the paper's tables call them out:
//!
//! - **Table 1's high-IPv6 carriers**: Reliance Jio (AS55836, 0.96),
//!   T-Mobile US (AS21928, 0.95), Sky Broadband (AS5607, 0.95), AWN Thailand
//!   (AS131445, 0.88), Sprint (AS10507, 0.86), Verizon (AS22394, 0.86),
//!   Telefónica Brasil (AS26599), Deutsche Telekom (AS3320, 0.83), Comcast
//!   (AS7922, 0.82), TIM Brasil (AS26615, 0.82).
//! - **§6.1.3's gateway carrier** (modeled on AS20057 AT&T Mobility): a
//!   mobile carrier whose subscribers egress through a handful of /112-style
//!   gateway blocks with low-16-bit IIDs — the source of the mega-populated
//!   IPv6 addresses and /112 prefixes.
//! - **§6.1.3's heavy IPv4 CGNs**: Telkom Indonesia (AS23693), Axiata
//!   (AS24203), Indosat (AS4761), Vodafone India (AS38266) — tiny egress
//!   pools shared by enormous subscriber bases.
//! - **§6.2.3's hosting/VPN providers**: M247 (AS9009), Cloudflare
//!   (AS13335), OVH (AS16276), DigitalOcean (AS14061) — VPN egress PoPs
//!   that create heavily populated /64s, plus rentable attacker servers.

use ipv6_study_netaddr::{Ipv4Prefix, Ipv6Prefix};
use ipv6_study_stats::dist::WeightedIndex;
use ipv6_study_telemetry::{Asn, Country};

use crate::conf::{V4Conf, V6Conf};
use crate::countries::{solve_deployment, standard_countries, CountryProfile};
use crate::kind::NetworkKind;
use crate::network::{Network, NetworkError, NetworkId, NetworkSpec};

/// Number of gateway /112 blocks on the gateway-mode carrier. Few blocks ×
/// a large subscriber base = the paper's mega-populated prefixes.
const GATEWAY_BLOCKS: u16 = 6;
/// Active egress addresses per gateway block: tiny by design, so each
/// gateway address carries a large slice of the carrier's users (the
/// §6.1.3 mega-populated addresses). Their load grows with the simulated
/// population, exactly like a real gateway's.
const GATEWAY_EGRESS: u16 = 4;

/// Egress-pool size for the mega-CGNs (heavily shared IPv4); fixed so the
/// per-address user load grows with the population.
const MEGA_CGN_POOL: u32 = 24;
/// Egress addresses per enterprise network (shared by its companies).
const ENTERPRISE_POOL: u32 = 4_096;
/// Egress addresses per hosting/VPN provider (IPv4).
const HOSTING_POOL_V4: u32 = 512;
/// VPN PoP count (IPv6 /64s) per hosting provider.
const HOSTING_POPS: u16 = 24;
/// Design household count behind [`World::standard`]; use [`World::sized`]
/// for a different simulated population.
const DEFAULT_DESIGN_HOUSEHOLDS: u64 = 20_000;
/// Households sharing one residential egress address on average. NAT444 is
/// widespread, and Figure 7 needs only about a third of IPv4 addresses to
/// be single-user even within one day.
const HOUSEHOLDS_PER_V4_ADDR: f64 = 2.2;
/// Subscribers per ordinary-CGN egress address on average.
const SUBSCRIBERS_PER_CGN_ADDR: f64 = 7.0;
/// Average household members (mirrors the behavior crate's distribution).
const MEMBERS_PER_HOUSEHOLD: f64 = 2.4;
/// Share of users with a mobile subscription (mirrors behavior).
const MOBILE_SHARE: f64 = 0.78;

/// The complete network population plus country metadata and pick tables.
#[derive(Debug)]
pub struct World {
    /// World seed (flows into nothing here — the world is static — but is
    /// carried for provenance and reused by the behavior crate).
    pub seed: u64,
    networks: Vec<Network>,
    countries: Vec<CountryProfile>,
    country_index: WeightedIndex,
    residential: Vec<(Vec<NetworkId>, WeightedIndex)>,
    mobile: Vec<(Vec<NetworkId>, WeightedIndex)>,
    enterprise: Vec<(Vec<NetworkId>, WeightedIndex)>,
    hosting: (Vec<NetworkId>, WeightedIndex),
}

/// Internal builder state.
struct Builder {
    networks: Vec<Network>,
}

impl Builder {
    fn next_id(&self) -> NetworkId {
        NetworkId(self.networks.len() as u32)
    }

    /// Sequential synthetic address blocks: the i-th network owns the IPv4
    /// /16 `11.0.0.0/16 + i` and the IPv6 /32 `2a00::/32 + i` (documented
    /// synthetic space; geolocation and ASN mapping are by construction).
    fn v4_pool(&self) -> Ipv4Prefix {
        let i = self.networks.len() as u32;
        Ipv4Prefix::from_bits(0x0B00_0000u32.wrapping_add(i << 16), 16)
    }

    fn v6_routing(&self) -> Ipv6Prefix {
        let i = self.networks.len() as u128;
        Ipv6Prefix::from_bits((0x2A00_0000u128 + i) << 96, 32)
    }

    fn push(&mut self, spec: NetworkSpec) -> Result<NetworkId, NetworkError> {
        let id = self.next_id();
        self.networks.push(Network::try_new(id, spec)?);
        Ok(id)
    }

    fn synth_asn(&self) -> Asn {
        // Private-use 32-bit ASN range, one per synthetic network.
        Asn(4_200_000_000 + self.networks.len() as u32)
    }
}

/// A named-network override: replaces one synthetic slot in a country's
/// portfolio with a real-world-inspired ASN and deployment ratio.
struct NamedNet {
    code: &'static str,
    kind: NetworkKind,
    asn: u32,
    name: &'static str,
    /// Subscriber weight within (country, kind).
    weight: f64,
    /// Fixed IPv6 deployment ratio (overrides the solved country ratio);
    /// `None` inherits the solved ratio.
    v6: Option<f64>,
    /// Marks the gateway-mode carrier.
    gateway: bool,
    /// Marks a mega-CGN (tiny IPv4 egress pool).
    mega_cgn: bool,
}

const NAMED: &[NamedNet] = &[
    NamedNet {
        code: "IN",
        kind: NetworkKind::Mobile,
        asn: 55836,
        name: "Reliance Jio",
        weight: 0.55,
        v6: Some(0.96),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "IN",
        kind: NetworkKind::Mobile,
        asn: 38266,
        name: "Vodafone India",
        weight: 0.25,
        v6: Some(0.45),
        gateway: false,
        mega_cgn: true,
    },
    NamedNet {
        code: "US",
        kind: NetworkKind::Mobile,
        asn: 21928,
        name: "T-Mobile US",
        weight: 0.28,
        v6: Some(0.95),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "US",
        kind: NetworkKind::Mobile,
        asn: 22394,
        name: "Verizon Wireless",
        weight: 0.25,
        v6: Some(0.86),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "US",
        kind: NetworkKind::Mobile,
        asn: 10507,
        name: "Sprint PCS",
        weight: 0.12,
        v6: Some(0.86),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "US",
        kind: NetworkKind::Mobile,
        asn: 20057,
        name: "AT&T Mobility",
        weight: 0.30,
        v6: Some(0.88),
        gateway: true,
        mega_cgn: false,
    },
    NamedNet {
        code: "US",
        kind: NetworkKind::Residential,
        asn: 7922,
        name: "Comcast",
        weight: 0.40,
        v6: Some(0.82),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "GB",
        kind: NetworkKind::Residential,
        asn: 5607,
        name: "Sky Broadband",
        weight: 0.35,
        v6: Some(0.95),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "TH",
        kind: NetworkKind::Mobile,
        asn: 131445,
        name: "Advanced Wireless Network",
        weight: 0.45,
        v6: Some(0.88),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "DE",
        kind: NetworkKind::Residential,
        asn: 3320,
        name: "Deutsche Telekom",
        weight: 0.45,
        v6: Some(0.83),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "BR",
        kind: NetworkKind::Residential,
        asn: 26599,
        name: "Telefonica Brasil",
        weight: 0.35,
        v6: Some(0.84),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "BR",
        kind: NetworkKind::Mobile,
        asn: 26615,
        name: "TIM Brasil",
        weight: 0.30,
        v6: Some(0.82),
        gateway: false,
        mega_cgn: false,
    },
    NamedNet {
        code: "ID",
        kind: NetworkKind::Mobile,
        asn: 23693,
        name: "Telkomsel",
        weight: 0.45,
        v6: Some(0.04),
        gateway: false,
        mega_cgn: true,
    },
    NamedNet {
        code: "ID",
        kind: NetworkKind::Mobile,
        asn: 24203,
        name: "Axiata XL",
        weight: 0.30,
        v6: Some(0.05),
        gateway: false,
        mega_cgn: true,
    },
    NamedNet {
        code: "ID",
        kind: NetworkKind::Mobile,
        asn: 4761,
        name: "Indosat",
        weight: 0.25,
        v6: Some(0.05),
        gateway: false,
        mega_cgn: true,
    },
];

/// Hosting/VPN providers (global).
const HOSTERS: &[(&str, u32, &str)] = &[
    ("RO", 9009, "M247"),
    ("US", 13335, "Cloudflare"),
    ("FR", 16276, "OVH"),
    ("US", 14061, "DigitalOcean"),
    ("NL", 4_200_100_001, "SyntheticHost-A"),
    ("SG", 4_200_100_002, "SyntheticHost-B"),
];

impl World {
    /// Builds the standard world at the default design population.
    pub fn standard(seed: u64) -> Self {
        Self::sized(seed, DEFAULT_DESIGN_HOUSEHOLDS)
    }

    /// Builds the standard world sized for `design_households` homes, so
    /// address-sharing densities (users per NAT/CGN egress) stay constant
    /// across simulation scales.
    pub fn sized(seed: u64, design_households: u64) -> Self {
        // invariant: the standard world's derived pool sizes are clamped
        // into their prefixes by construction, so try_sized cannot fail
        // here; a panic means the builder itself regressed.
        Self::try_sized(seed, design_households).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`World::sized`], for callers whose population
    /// size comes from configuration: construction errors are reported
    /// instead of panicking, so `StudyConfig::validate` can surface them.
    pub fn try_sized(seed: u64, design_households: u64) -> Result<Self, NetworkError> {
        let countries = standard_countries();
        let mut b = Builder {
            networks: Vec::new(),
        };
        let mut residential = Vec::new();
        let mut mobile = Vec::new();
        let mut enterprise = Vec::new();

        for profile in &countries {
            let code = profile.country.as_str();
            let households_c = design_households as f64 * profile.weight;
            let mobile_subs_c = households_c * MEMBERS_PER_HOUSEHOLD * MOBILE_SHARE;
            let res_pool = |weight: f64| -> u32 {
                ((households_c * weight / HOUSEHOLDS_PER_V4_ADDR) as u32).clamp(24, 60_000)
            };
            let cgn_pool = |weight: f64| -> u32 {
                ((mobile_subs_c * weight / SUBSCRIBERS_PER_CGN_ADDR) as u32).clamp(16, 16_000)
            };
            let res_jan = solve_deployment(profile.v6_jan, profile.mobile_skew);
            let res_apr = solve_deployment(profile.v6_apr, profile.mobile_skew);
            // Linear ramp between the two calibration points; day 22 is
            // Jan 23 and day 109 is Apr 19.
            let ramp = (res_apr - res_jan) / 87.0;
            let res_base = (res_jan - ramp * 22.0).clamp(0.0, 1.0);
            let mob = |r: f64| (profile.mobile_skew * r).clamp(0.0, 0.97);

            // Residential portfolio: one leader, one median, one laggard,
            // so countries show ASN diversity in Table-1-style rankings.
            let named_res: Vec<&NamedNet> = NAMED
                .iter()
                .filter(|n| n.code == code && n.kind == NetworkKind::Residential)
                .collect();
            let mut res_ids = Vec::new();
            let mut res_weights = Vec::new();
            for n in &named_res {
                let id = b.push(NetworkSpec {
                    asn: Asn(n.asn),
                    name: n.name.to_string(),
                    kind: NetworkKind::Residential,
                    country: profile.country,
                    weight: n.weight,
                    v6_base_ratio: n.v6.unwrap_or(res_base).max(0.0001),
                    v6_ramp_per_day: if n.v6.is_some() { 0.0 } else { ramp.max(0.0) },
                    v4: V4Conf::home(b.v4_pool(), res_pool(n.weight), 5.0),
                    v6: Some(V6Conf::residential(b.v6_routing(), 56, 75.0)),
                })?;
                res_ids.push(id);
                res_weights.push(n.weight);
            }
            let remaining: f64 = 1.0 - res_weights.iter().sum::<f64>();
            // Spread multipliers keep the weighted mean at the solved ratio.
            for (i, (mult, w, pd_len, pd_days)) in [
                (1.25, 0.45, 56u8, 75.0),
                (1.0, 0.35, 60, 40.0),
                (0.5, 0.20, 64, 20.0),
            ]
            .iter()
            .enumerate()
            {
                let ratio = (res_base * mult).clamp(0.0, 0.97);
                let weight = remaining * w;
                let id = b.push(NetworkSpec {
                    asn: b.synth_asn(),
                    name: format!("{code}-Broadband-{}", i + 1),
                    kind: NetworkKind::Residential,
                    country: profile.country,
                    weight,
                    v6_base_ratio: ratio.max(0.0001),
                    v6_ramp_per_day: (ramp * mult).max(0.0),
                    v4: V4Conf::home(b.v4_pool(), res_pool(weight), 5.0),
                    v6: Some(V6Conf::residential(b.v6_routing(), *pd_len, *pd_days)),
                })?;
                res_ids.push(id);
                res_weights.push(weight);
            }
            residential.push((res_ids, WeightedIndex::new(&res_weights)));

            // Mobile portfolio.
            let named_mob: Vec<&NamedNet> = NAMED
                .iter()
                .filter(|n| n.code == code && n.kind == NetworkKind::Mobile)
                .collect();
            let mut mob_ids = Vec::new();
            let mut mob_weights = Vec::new();
            for n in &named_mob {
                let v4 = if n.mega_cgn {
                    let mut c = V4Conf::cgn(b.v4_pool(), MEGA_CGN_POOL, 3.0);
                    c.lease_mean_days = 1.0;
                    c
                } else {
                    let mut c = V4Conf::cgn(b.v4_pool(), cgn_pool(n.weight), 4.0);
                    c.lease_mean_days = 1.0;
                    c
                };
                // Gateway carrier aside, alternate named carriers between
                // per-device and sector-shared /64 deployments.
                let v6conf = if n.gateway {
                    V6Conf::gateway(b.v6_routing(), GATEWAY_BLOCKS, GATEWAY_EGRESS)
                } else if n.asn % 2 == 0 {
                    let subs = (mobile_subs_c * n.weight) as u32;
                    V6Conf::mobile_sector(b.v6_routing(), (subs / 12).max(16))
                } else {
                    V6Conf::mobile(b.v6_routing(), 7.0, 0.15)
                };
                let id = b.push(NetworkSpec {
                    asn: Asn(n.asn),
                    name: n.name.to_string(),
                    kind: NetworkKind::Mobile,
                    country: profile.country,
                    weight: n.weight,
                    v6_base_ratio: n.v6.unwrap_or_else(|| mob(res_base)).max(0.0001),
                    v6_ramp_per_day: 0.0,
                    v4,
                    v6: Some(v6conf),
                })?;
                mob_ids.push(id);
                mob_weights.push(n.weight);
            }
            let remaining: f64 = 1.0 - mob_weights.iter().sum::<f64>();
            if remaining > 1e-9 {
                for (i, (mult, w)) in [(1.1, 0.6), (0.75, 0.4)].iter().enumerate() {
                    let ratio = (mob(res_base) * mult).clamp(0.0, 0.97);
                    let weight = remaining * w;
                    let id = b.push(NetworkSpec {
                        asn: b.synth_asn(),
                        name: format!("{code}-Mobile-{}", i + 1),
                        kind: NetworkKind::Mobile,
                        country: profile.country,
                        weight,
                        v6_base_ratio: ratio.max(0.0001),
                        v6_ramp_per_day: (ramp * mob(1.0) * mult).max(0.0),
                        v4: {
                            let mut c = V4Conf::cgn(b.v4_pool(), cgn_pool(weight), 4.0);
                            c.lease_mean_days = 1.0;
                            c
                        },
                        v6: Some(if i == 0 {
                            let subs = (mobile_subs_c * weight) as u32;
                            V6Conf::mobile_sector(b.v6_routing(), (subs / 12).max(16))
                        } else {
                            V6Conf::mobile(b.v6_routing(), 7.0, 0.15)
                        }),
                    })?;
                    mob_ids.push(id);
                    mob_weights.push(weight);
                }
            }
            mobile.push((mob_ids, WeightedIndex::new(&mob_weights)));

            // One enterprise network per country, IPv6-poor and sticky.
            let ent_ratio = (0.2 * res_base).clamp(0.0001, 0.5);
            let ent_id = b.push(NetworkSpec {
                asn: b.synth_asn(),
                name: format!("{code}-Enterprise"),
                kind: NetworkKind::Enterprise,
                country: profile.country,
                weight: 1.0,
                v6_base_ratio: ent_ratio,
                v6_ramp_per_day: 0.0,
                v4: V4Conf::enterprise(b.v4_pool(), ENTERPRISE_POOL),
                v6: Some(V6Conf::residential(b.v6_routing(), 64, 365.0)),
            })?;
            enterprise.push((vec![ent_id], WeightedIndex::new(&[1.0])));
        }

        // Global hosting/VPN providers.
        let mut host_ids = Vec::new();
        let mut host_weights = Vec::new();
        for (i, (cc, asn, name)) in HOSTERS.iter().enumerate() {
            let id = b.push(NetworkSpec {
                asn: Asn(*asn),
                name: (*name).to_string(),
                kind: NetworkKind::Hosting,
                country: Country::new(cc),
                weight: if i == 0 { 0.30 } else { 0.14 },
                v6_base_ratio: 0.9,
                v6_ramp_per_day: 0.0,
                v4: V4Conf::shared_egress(b.v4_pool(), HOSTING_POOL_V4),
                v6: Some(V6Conf::hosting(b.v6_routing(), HOSTING_POPS)),
            })?;
            host_ids.push(id);
            host_weights.push(if i == 0 { 0.30 } else { 0.14 });
        }

        let country_index =
            WeightedIndex::new(&countries.iter().map(|c| c.weight).collect::<Vec<_>>());

        Ok(World {
            seed,
            networks: b.networks,
            countries,
            country_index,
            residential,
            mobile,
            enterprise,
            hosting: (host_ids, WeightedIndex::new(&host_weights)),
        })
    }

    /// All networks.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// Mutable access to the networks, for ablation studies that rewrite
    /// assignment policies after the world is built.
    pub fn networks_mut(&mut self) -> &mut [Network] {
        &mut self.networks
    }

    /// A network by id.
    pub fn network(&self, id: NetworkId) -> &Network {
        &self.networks[id.0 as usize]
    }

    /// All country profiles.
    pub fn countries(&self) -> &[CountryProfile] {
        &self.countries
    }

    /// The profile at a country index.
    pub fn country(&self, idx: usize) -> &CountryProfile {
        &self.countries[idx]
    }

    /// Samples a country index by population weight.
    pub fn pick_country(&self, h: u64) -> usize {
        self.country_index.sample(h)
    }

    /// Samples a residential ISP for a country.
    pub fn pick_residential(&self, country_idx: usize, h: u64) -> NetworkId {
        let (ids, w) = &self.residential[country_idx];
        ids[w.sample(h)]
    }

    /// Samples a mobile carrier for a country.
    pub fn pick_mobile(&self, country_idx: usize, h: u64) -> NetworkId {
        let (ids, w) = &self.mobile[country_idx];
        ids[w.sample(h)]
    }

    /// Samples the enterprise network for a country.
    pub fn pick_enterprise(&self, country_idx: usize, h: u64) -> NetworkId {
        let (ids, w) = &self.enterprise[country_idx];
        ids[w.sample(h)]
    }

    /// Samples a hosting/VPN provider (global).
    pub fn pick_hosting(&self, h: u64) -> NetworkId {
        let (ids, w) = &self.hosting;
        ids[w.sample(h)]
    }

    /// Finds a network by ASN (named networks have unique ASNs).
    pub fn find_by_asn(&self, asn: Asn) -> Option<&Network> {
        self.networks.iter().find(|n| n.asn == asn)
    }

    /// The gateway-mode carrier (the §6.1.3 outlier network).
    pub fn gateway_carrier(&self) -> Option<&Network> {
        self.networks.iter().find(|n| {
            matches!(
                n.v6.as_ref().map(|v| v.mode),
                Some(crate::conf::V6Mode::Gateway { .. })
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_stats::hash::stable_hash64;
    use ipv6_study_telemetry::SimDate;

    fn world() -> World {
        World::standard(42)
    }

    #[test]
    fn world_builds_with_all_kinds_everywhere() {
        let w = world();
        assert!(w.networks().len() > 150, "got {}", w.networks().len());
        for idx in 0..w.countries().len() {
            let h = stable_hash64(1, &(idx as u64).to_le_bytes());
            let r = w.network(w.pick_residential(idx, h));
            assert_eq!(r.kind, NetworkKind::Residential);
            assert_eq!(r.country, w.country(idx).country);
            let m = w.network(w.pick_mobile(idx, h));
            assert_eq!(m.kind, NetworkKind::Mobile);
            let e = w.network(w.pick_enterprise(idx, h));
            assert_eq!(e.kind, NetworkKind::Enterprise);
        }
        let host = w.network(w.pick_hosting(7));
        assert_eq!(host.kind, NetworkKind::Hosting);
    }

    #[test]
    fn named_networks_are_present_with_ratios() {
        let w = world();
        let jio = w.find_by_asn(Asn(55836)).expect("Reliance Jio");
        assert!((jio.v6_base_ratio - 0.96).abs() < 1e-9);
        assert_eq!(jio.country, Country::new("IN"));
        let sky = w.find_by_asn(Asn(5607)).expect("Sky");
        assert!((sky.v6_base_ratio - 0.95).abs() < 1e-9);
        let telkom = w.find_by_asn(Asn(23693)).expect("Telkomsel");
        assert!(telkom.v4.pool_size <= 64, "mega CGN pool is tiny");
        assert!(telkom.v4.intra_day_cycles > 1.0);
        assert!(w.find_by_asn(Asn(9009)).is_some(), "M247");
    }

    #[test]
    fn gateway_carrier_exists_and_is_att() {
        let w = world();
        let gw = w.gateway_carrier().expect("gateway carrier");
        assert_eq!(gw.asn, Asn(20057));
        assert_eq!(gw.kind, NetworkKind::Mobile);
    }

    #[test]
    fn address_pools_do_not_overlap() {
        let w = world();
        let mut v4 = std::collections::HashSet::new();
        let mut v6 = std::collections::HashSet::new();
        for n in w.networks() {
            assert!(v4.insert(n.v4.pool), "duplicate v4 pool {:?}", n.v4.pool);
            if let Some(conf) = &n.v6 {
                assert!(v6.insert(conf.routing), "duplicate v6 routing");
            }
        }
    }

    #[test]
    fn country_sampling_tracks_weights() {
        let w = world();
        let n = 200_000;
        let mut hits = vec![0u32; w.countries().len()];
        for i in 0..n {
            let h = stable_hash64(9, &(i as u64).to_le_bytes());
            hits[w.pick_country(h)] += 1;
        }
        // India carries ~14%.
        let in_idx = w
            .countries()
            .iter()
            .position(|c| c.country == Country::new("IN"))
            .unwrap();
        let got = f64::from(hits[in_idx]) / n as f64;
        assert!((got - 0.14).abs() < 0.01, "IN share {got}");
    }

    #[test]
    fn germany_ramps_over_the_window() {
        let w = world();
        let dt = w.find_by_asn(Asn(3320)).unwrap();
        // The named DT network has a fixed (already-high) ratio…
        assert!(dt.v6_base_ratio > 0.8);
        // …while the synthetic German ISPs carry the country ramp.
        let de_ramp = w
            .networks()
            .iter()
            .filter(|n| n.country == Country::new("DE") && n.kind == NetworkKind::Residential)
            .any(|n| n.v6_ramp_per_day > 0.0005);
        assert!(de_ramp, "German residential ramp expected");
        let by_ramp = w
            .networks()
            .iter()
            .filter(|n| n.country == Country::new("BY"))
            .any(|n| n.v6_ramp_per_day > 0.0005);
        assert!(by_ramp, "Belarus ramp expected");
    }

    #[test]
    fn try_sized_builds_across_scales() {
        for hh in [400, 20_000, 1_000_000] {
            let w = World::try_sized(42, hh).expect("standard world is always valid");
            assert!(w.networks().len() > 150);
        }
    }

    #[test]
    fn deployment_ratio_bounds_hold_everywhere() {
        let w = world();
        for n in w.networks() {
            for day in [SimDate::ymd(1, 23), SimDate::ymd(4, 19)] {
                let r = n.v6_ratio_on(day);
                assert!((0.0..=1.0).contains(&r), "{}: {r}", n.name);
            }
        }
    }
}
