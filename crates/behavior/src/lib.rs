//! User and attacker behavior models.
//!
//! This crate turns the static world of `ipv6-study-netmodel` into a request
//! stream: who is online, on which networks, with which devices, making how
//! many requests — and, for attackers, which infrastructure their abusive
//! accounts ride and when the platform detects them.
//!
//! - [`device`] — devices: phone/computer, IPv6 capability, and the EUI-64
//!   addressing minority (§4.4: ~2.5% of users, 83% of those with a static
//!   MAC, the rest randomizing).
//! - [`population`] — the benign population: households (the unit of home
//!   connectivity), members, devices, per-user network portfolio
//!   (home ISP, mobile carrier, workplace, optional VPN), and activity
//!   levels. All procedurally derived from the world seed.
//! - [`schedule`] — the activity model: which network contexts a user
//!   touches on a given day (weekday / weekend / lockdown aware — the
//!   machinery behind Figure 1's inflections), and how many requests each
//!   context carries.
//! - [`emit`] — materializing a user-day into [`RequestRecord`]s, choosing
//!   protocol per request (happy-eyeballs preference on dual-stack paths).
//! - [`abuse`] — attacker campaigns: infrastructure choice (hosting
//!   servers, residential proxies, mobile device farms), account batches,
//!   request emission, and the detection process that censors lifetimes
//!   (§3.3).
//!
//! [`RequestRecord`]: ipv6_study_telemetry::RequestRecord

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abuse;
pub mod device;
pub mod emit;
pub mod population;
pub mod schedule;

pub use abuse::{AbuseSim, CampaignInfra};
pub use device::{DeviceKind, DeviceProfile, Eui64Mode};
pub use population::{
    approx_users, HouseholdProfile, Population, UserProfile, USERS_PER_HOUSEHOLD,
};
pub use schedule::{ContextKind, DayPlan, SessionCtx};
