//! The benign population: households, users, and their network portfolios.
//!
//! The household is the unit of home connectivity — everyone in it shares
//! one home NAT egress (IPv4) and one delegated prefix (IPv6), which is what
//! makes IPv4 addresses multi-user (Fig 7) and clusters household members
//! into one /64 (Fig 9). Each member additionally carries their own mobile
//! subscription (usually), possibly a workplace network, and rarely a VPN
//! habit.
//!
//! Everything is derived procedurally: `Population` holds only the world
//! reference, a seed, and the household count. Profiles are pure functions
//! of `(seed, household index)` — O(1) lookup of any user, no giant vectors.

use ipv6_study_netmodel::{NetworkId, World};
use ipv6_study_stats::dist::{bernoulli, lognormal, uniform_range};
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::{DeviceId, HouseholdId, UserId};

use crate::device::{devices_per_user, DeviceProfile};

/// Fraction of users with a personal mobile subscription.
pub const MOBILE_SUBSCRIPTION: f64 = 0.78;
/// Fraction of users with a workplace (enterprise) network.
pub const WORK_NETWORK: f64 = 0.35;
/// Fraction of users who route some sessions through a VPN.
pub const VPN_USERS: f64 = 0.015;
/// Maximum members a household can hold in the id encoding.
pub const MAX_MEMBERS: u64 = 8;
/// Mean members per household (the 25/30/25/20 split below). Exported so
/// config-time sampling validation uses the same population arithmetic as
/// the simulator.
pub const USERS_PER_HOUSEHOLD: f64 = 2.4;

/// Expected user count for a household count — `households ×`
/// [`USERS_PER_HOUSEHOLD`], truncated.
pub fn approx_users(households: u64) -> u64 {
    (households as f64 * USERS_PER_HOUSEHOLD) as u64
}

/// A household: country, home ISP, and member count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HouseholdProfile {
    /// Household id.
    pub household: HouseholdId,
    /// Index into the world's country table.
    pub country_idx: usize,
    /// The home (residential) ISP.
    pub home_net: NetworkId,
    /// Number of members (1–4).
    pub members: u32,
}

/// One user's full profile.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// User id (encodes household and member index).
    pub user: UserId,
    /// The household this user lives in.
    pub household: HouseholdProfile,
    /// Mobile carrier, when subscribed.
    pub mobile_net: Option<NetworkId>,
    /// Workplace network, when employed at a connected workplace.
    pub work_net: Option<NetworkId>,
    /// Company id within the workplace network (keys the enterprise NAT).
    pub company: u64,
    /// VPN provider for the minority that uses one.
    pub vpn_net: Option<NetworkId>,
    /// The user's devices (first is always a phone).
    pub devices: Vec<DeviceProfile>,
    /// Per-user request-volume multiplier (log-normal, mean ≈ 1).
    pub activity: f64,
    /// Probability the user is online at all on a given day. Platforms see
    /// a wide engagement spectrum; the week-level figures (a quarter of
    /// IPv6 users showing a single address all week, Figure 4a at /128)
    /// require many low-engagement users.
    pub presence: f64,
    /// Address-churn multiplier. 1.0 for almost everyone; a tiny minority
    /// of "churners" (≈0.1%, plus an extreme ≈0.01%) cycle addresses at
    /// enormous rates — the §5.1.3 outlier users with hundreds to
    /// thousands of addresses a week, which the paper found concentrated
    /// in mobile ASNs and could not explain. IPv4 churn runs hotter than
    /// IPv6 (CGN cycles per flow; IPv6 reattaches per session), giving
    /// IPv4 its more extreme outlier tail.
    pub churn_factor: f64,
}

impl UserProfile {
    /// The devices usable in a mobile context (phones).
    pub fn phones(&self) -> impl Iterator<Item = &DeviceProfile> {
        self.devices
            .iter()
            .filter(|d| d.kind == crate::device::DeviceKind::Phone)
    }
}

/// The procedurally generated population.
#[derive(Debug)]
pub struct Population<'w> {
    world: &'w World,
    seed: u64,
    households: u64,
}

impl<'w> Population<'w> {
    /// Creates a population of `households` homes over the given world.
    pub fn new(world: &'w World, seed: u64, households: u64) -> Self {
        assert!(households > 0, "population needs at least one household");
        Self {
            world,
            seed,
            households,
        }
    }

    /// The world this population lives in.
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// Number of households.
    pub fn num_households(&self) -> u64 {
        self.households
    }

    /// Expected number of users (~[`USERS_PER_HOUSEHOLD`] members per
    /// household).
    pub fn approx_users(&self) -> u64 {
        approx_users(self.households)
    }

    fn h(&self, tag: u32, a: u64, b: u64) -> u64 {
        let mut h = StableHasher::new(self.seed ^ (u64::from(tag) << 32));
        h.write_u64(a).write_u64(b);
        h.finish()
    }

    /// The household at index `hh` (0-based).
    pub fn household(&self, hh: u64) -> HouseholdProfile {
        debug_assert!(hh < self.households);
        let country_idx = self.world.pick_country(self.h(1, hh, 0));
        let home_net = self.world.pick_residential(country_idx, self.h(2, hh, 0));
        // 1–4 members: 25% singles, 30% couples, 25% three, 20% four
        // (mean 2.4 — household co-residence drives both IPv4 NAT sharing
        // and the /64 user aggregation of Figure 9).
        let members = match uniform_range(self.h(3, hh, 0), 100) {
            0..=24 => 1,
            25..=54 => 2,
            55..=79 => 3,
            _ => 4,
        };
        HouseholdProfile {
            household: HouseholdId(hh),
            country_idx,
            home_net,
            members,
        }
    }

    /// The user ids of a household's members.
    pub fn member_ids(&self, hh: &HouseholdProfile) -> impl Iterator<Item = UserId> {
        let base = hh.household.raw() * MAX_MEMBERS;
        (0..u64::from(hh.members)).map(move |k| UserId(base + k))
    }

    /// Decodes which household a user id belongs to.
    pub fn household_of(&self, user: UserId) -> HouseholdProfile {
        self.household(user.raw() / MAX_MEMBERS)
    }

    /// The full profile of a user (user ids come from [`Population::member_ids`]).
    pub fn user(&self, user: UserId) -> UserProfile {
        let hh = self.household_of(user);
        let u = user.raw();
        let mobile_net = bernoulli(self.h(4, u, 0), MOBILE_SUBSCRIPTION)
            .then(|| self.world.pick_mobile(hh.country_idx, self.h(5, u, 0)));
        let work_net = bernoulli(self.h(6, u, 0), WORK_NETWORK)
            .then(|| self.world.pick_enterprise(hh.country_idx, self.h(7, u, 0)));
        // ~3000 companies per country's enterprise network.
        let company = uniform_range(self.h(8, u, 0), 3_000);
        let vpn_net = bernoulli(self.h(9, u, 0), VPN_USERS)
            .then(|| self.world.pick_hosting(self.h(10, u, 0)));
        let n_dev = devices_per_user(self.h(11, u, 0));
        let devices = (0..n_dev)
            .map(|d| DeviceProfile::derive(self.seed, DeviceId(u * 4 + u64::from(d)), d == 0))
            .collect();
        // Log-normal activity, median 1, long right tail.
        let mut activity = lognormal(self.h(12, u, 0), 0.0, 0.6).clamp(0.05, 20.0);
        let churn_factor = match uniform_range(self.h(13, u, 0), 10_000) {
            0..=7 => 250.0, // extreme churner
            8..=59 => 30.0, // heavy churner
            _ => 1.0,
        };
        // Churners are also hyperactive: thousands of addresses are only
        // observable through thousands of requests.
        if churn_factor > 100.0 {
            activity = activity.max(30.0);
        } else if churn_factor > 1.0 {
            activity = activity.max(8.0);
        }
        // Engagement tiers: daily users, regulars, occasional users.
        // Churners are always daily, always mobile — the paper's top
        // outlier users sat in mobile ASNs.
        let presence = if churn_factor > 1.0 {
            0.95
        } else {
            match uniform_range(self.h(14, u, 0), 100) {
                0..=29 => 0.95,
                30..=69 => 0.60,
                _ => 0.25,
            }
        };
        let mobile_net = mobile_net.or_else(|| {
            (churn_factor > 1.0).then(|| self.world.pick_mobile(hh.country_idx, self.h(15, u, 0)))
        });
        UserProfile {
            user,
            household: hh,
            mobile_net,
            work_net,
            company,
            vpn_net,
            devices,
            activity,
            presence,
            churn_factor,
        }
    }

    /// Iterates every user in the population, household by household.
    pub fn iter_users(&self) -> impl Iterator<Item = UserProfile> + '_ {
        (0..self.households).flat_map(move |hh| {
            let profile = self.household(hh);
            self.member_ids(&profile)
                .map(|uid| self.user(uid))
                .collect::<Vec<_>>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_netmodel::NetworkKind;

    fn world() -> World {
        World::standard(7)
    }

    #[test]
    fn households_are_deterministic_and_bounded() {
        let w = world();
        let p = Population::new(&w, 1, 1000);
        for hh in 0..1000 {
            let a = p.household(hh);
            let b = p.household(hh);
            assert_eq!(a, b);
            assert!((1..=4).contains(&a.members));
            assert_eq!(w.network(a.home_net).kind, NetworkKind::Residential);
            assert_eq!(
                w.network(a.home_net).country,
                w.country(a.country_idx).country
            );
        }
    }

    #[test]
    fn member_ids_round_trip_to_household() {
        let w = world();
        let p = Population::new(&w, 1, 100);
        for hh in 0..100 {
            let prof = p.household(hh);
            for uid in p.member_ids(&prof) {
                assert_eq!(p.household_of(uid).household, prof.household);
            }
        }
    }

    #[test]
    fn user_profiles_have_expected_structure() {
        let w = world();
        let p = Population::new(&w, 1, 2000);
        let mut mobile = 0;
        let mut work = 0;
        let mut vpn = 0;
        let mut users = 0;
        for prof in p.iter_users() {
            users += 1;
            assert!(!prof.devices.is_empty() && prof.devices.len() <= 3);
            assert_eq!(prof.devices[0].kind, crate::device::DeviceKind::Phone);
            assert!(prof.activity > 0.0);
            if let Some(m) = prof.mobile_net {
                mobile += 1;
                assert_eq!(w.network(m).kind, NetworkKind::Mobile);
            }
            if let Some(e) = prof.work_net {
                work += 1;
                assert_eq!(w.network(e).kind, NetworkKind::Enterprise);
            }
            if let Some(v) = prof.vpn_net {
                vpn += 1;
                assert_eq!(w.network(v).kind, NetworkKind::Hosting);
            }
        }
        let users = users as f64;
        assert!((users / 2000.0 - 2.4).abs() < 0.25, "members/household");
        assert!((f64::from(mobile) / users - MOBILE_SUBSCRIPTION).abs() < 0.03);
        assert!((f64::from(work) / users - WORK_NETWORK).abs() < 0.03);
        assert!(f64::from(vpn) / users < 0.03);
    }

    #[test]
    fn members_share_home_but_not_necessarily_mobile() {
        let w = world();
        let p = Population::new(&w, 1, 500);
        let mut differing_mobile = false;
        for hh in 0..500 {
            let prof = p.household(hh);
            let members: Vec<UserProfile> = p.member_ids(&prof).map(|u| p.user(u)).collect();
            let home = members[0].household.home_net;
            assert!(members.iter().all(|m| m.household.home_net == home));
            let mobiles: std::collections::HashSet<_> =
                members.iter().filter_map(|m| m.mobile_net).collect();
            if mobiles.len() > 1 {
                differing_mobile = true;
            }
        }
        assert!(differing_mobile, "members can use different carriers");
    }
}
