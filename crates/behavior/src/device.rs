//! Client devices.
//!
//! Devices matter to the study in three ways: users with several devices
//! hold several concurrent IPv6 addresses (§5.1.1); a small minority of
//! devices embed their MAC in the interface identifier (§4.4); and phones
//! vs. computers determine which network contexts a device appears in.

use ipv6_study_netaddr::MacAddr;
use ipv6_study_stats::dist::{bernoulli, uniform_range};
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::{DeviceId, SimDate};

/// Fraction of users whose device uses EUI-64 (MAC-embedded) IIDs — the
/// paper observes ~2.5% of IPv6 users (§4.4).
pub const EUI64_USER_FRACTION: f64 = 0.016;
/// Among EUI-64 devices, the fraction with a *static* MAC (the paper's 83%
/// reuse the same IID across addresses; the rest randomize their MAC).
pub const EUI64_STATIC_FRACTION: f64 = 0.83;
/// Fraction of devices that are IPv6-capable at all (old OS/CPE excluded).
pub const DEVICE_V6_CAPABLE: f64 = 0.96;
/// Fraction of devices still riding an IPv4→IPv6 transition tunnel
/// (6to4/Teredo). §4.4 observes fewer than 0.01% of IPv6 users on these;
/// they are a relic, but a platform still sees them.
pub const TRANSITION_FRACTION: f64 = 0.00008;

/// What kind of device this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// A phone: present in mobile contexts and on home Wi-Fi.
    Phone,
    /// A computer (laptop/desktop): home and work contexts.
    Computer,
}

/// IPv4→IPv6 transition tunnels (RFC 3056 / RFC 4380).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// 6to4: the IPv6 prefix embeds the public IPv4 address (2002::/16).
    SixToFour,
    /// Teredo: tunneled over UDP, addresses in 2001:0::/32.
    Teredo,
}

/// How the device forms IPv6 interface identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eui64Mode {
    /// RFC 4941 privacy (temporary, randomized) IIDs — the default.
    Privacy,
    /// Modified EUI-64 with a static MAC: the IID is constant across
    /// addresses and days.
    StaticMac,
    /// Modified EUI-64 with MAC randomization: a fresh MAC (and hence IID)
    /// per day.
    RandomizedMac,
}

/// One device's profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Device id.
    pub device: DeviceId,
    /// Phone or computer.
    pub kind: DeviceKind,
    /// IID formation mode.
    pub eui64: Eui64Mode,
    /// The burned-in MAC (used by [`Eui64Mode::StaticMac`]).
    pub mac: MacAddr,
    /// Whether the device speaks IPv6 at all.
    pub v6_capable: bool,
    /// The transition tunnel this relic device uses, if any.
    pub transition: Option<Transition>,
}

impl DeviceProfile {
    /// Derives a device procedurally from a seed domain and its id.
    ///
    /// `force_phone` pins the first device of every user to a phone so
    /// mobile contexts always have a device to use.
    pub fn derive(seed: u64, device: DeviceId, force_phone: bool) -> Self {
        let mut h = StableHasher::new(0x4445_5649); // "DEVI"
        h.write_u64(seed).write_u64(device.raw());
        let base = h.finish();

        let kind = if force_phone || bernoulli(mix(base, 1), 0.55) {
            DeviceKind::Phone
        } else {
            DeviceKind::Computer
        };
        let eui64 = if bernoulli(mix(base, 2), EUI64_USER_FRACTION) {
            if bernoulli(mix(base, 3), EUI64_STATIC_FRACTION) {
                Eui64Mode::StaticMac
            } else {
                Eui64Mode::RandomizedMac
            }
        } else {
            Eui64Mode::Privacy
        };
        // A plausible vendor OUI plus hash-derived NIC bytes.
        let nic = mix(base, 4);
        let mac = MacAddr::new([
            0x00,
            0x1b,
            0x63,
            (nic >> 16) as u8,
            (nic >> 8) as u8,
            nic as u8,
        ]);
        let v6_capable = bernoulli(mix(base, 5), DEVICE_V6_CAPABLE);
        let transition = if bernoulli(mix(base, 6), TRANSITION_FRACTION) {
            Some(if bernoulli(mix(base, 7), 0.5) {
                Transition::SixToFour
            } else {
                Transition::Teredo
            })
        } else {
            None
        };
        Self {
            device,
            kind,
            eui64,
            mac,
            v6_capable,
            transition,
        }
    }

    /// The MAC in effect on `day` — fixed for static MACs, re-derived daily
    /// under MAC randomization (randomized MACs set the locally-
    /// administered bit, as IEEE 802 requires).
    pub fn mac_on(&self, day: SimDate) -> MacAddr {
        match self.eui64 {
            Eui64Mode::StaticMac | Eui64Mode::Privacy => self.mac,
            Eui64Mode::RandomizedMac => {
                let mut h = StableHasher::new(0x4D41_4352); // "MACR"
                h.write_u64(self.device.raw())
                    .write_u64(u64::from(day.index()));
                let v = h.finish();
                let mut m = MacAddr::from_u64(v).0;
                m[0] = (m[0] | 0x02) & 0xFE; // locally administered, unicast
                MacAddr::new(m)
            }
        }
    }

    /// The MAC to embed in the IID, when this device embeds one at all.
    pub fn eui64_mac_on(&self, day: SimDate) -> Option<MacAddr> {
        match self.eui64 {
            Eui64Mode::Privacy => None,
            _ => Some(self.mac_on(day)),
        }
    }
}

#[inline]
fn mix(base: u64, tag: u64) -> u64 {
    let mut h = StableHasher::new(base);
    h.write_u64(tag);
    h.finish()
}

/// Number of devices a user owns: 1–3, averaging ≈ 1.6.
pub fn devices_per_user(h: u64) -> u32 {
    match uniform_range(h, 10) {
        0..=4 => 1, // 50%: one device
        5..=8 => 2, // 40%: two
        _ => 3,     // 10%: three
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = DeviceProfile::derive(1, DeviceId(7), false);
        let b = DeviceProfile::derive(1, DeviceId(7), false);
        assert_eq!(a, b);
        let c = DeviceProfile::derive(1, DeviceId(8), false);
        assert!(a.mac != c.mac || a.kind != c.kind || a.device != c.device);
    }

    #[test]
    fn force_phone_works() {
        for i in 0..50 {
            let d = DeviceProfile::derive(2, DeviceId(i), true);
            assert_eq!(d.kind, DeviceKind::Phone);
        }
    }

    #[test]
    fn eui64_population_fractions() {
        let n = 100_000u64;
        let mut eui = 0;
        let mut static_mac = 0;
        for i in 0..n {
            let d = DeviceProfile::derive(3, DeviceId(i), false);
            if d.eui64 != Eui64Mode::Privacy {
                eui += 1;
                if d.eui64 == Eui64Mode::StaticMac {
                    static_mac += 1;
                }
            }
        }
        let frac = eui as f64 / n as f64;
        assert!(
            (frac - EUI64_USER_FRACTION).abs() < 0.003,
            "eui64 frac {frac}"
        );
        let stat = static_mac as f64 / eui as f64;
        assert!(
            (stat - EUI64_STATIC_FRACTION).abs() < 0.03,
            "static frac {stat}"
        );
    }

    #[test]
    fn static_mac_is_stable_and_randomized_rotates() {
        let d1 = SimDate::ymd(4, 13);
        let d2 = SimDate::ymd(4, 14);
        let s = DeviceProfile {
            device: DeviceId(1),
            kind: DeviceKind::Phone,
            eui64: Eui64Mode::StaticMac,
            mac: MacAddr::new([0, 1, 2, 3, 4, 5]),
            v6_capable: true,
            transition: None,
        };
        assert_eq!(s.mac_on(d1), s.mac_on(d2));
        assert_eq!(s.eui64_mac_on(d1), Some(s.mac));

        let r = DeviceProfile {
            eui64: Eui64Mode::RandomizedMac,
            ..s
        };
        assert_ne!(r.mac_on(d1), r.mac_on(d2));
        assert!(r.mac_on(d1).is_locally_administered());
        assert_eq!(r.mac_on(d1), r.mac_on(d1), "stable within a day");

        let p = DeviceProfile {
            eui64: Eui64Mode::Privacy,
            ..s
        };
        assert_eq!(p.eui64_mac_on(d1), None);
    }

    #[test]
    fn devices_per_user_distribution() {
        let n = 50_000u64;
        let mut counts = [0u32; 4];
        for i in 0..n {
            let k = devices_per_user(ipv6_study_stats::hash::stable_hash64(5, &i.to_le_bytes()));
            assert!((1..=3).contains(&k));
            counts[k as usize] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[3]);
        let mean: f64 =
            (1.0 * f64::from(counts[1]) + 2.0 * f64::from(counts[2]) + 3.0 * f64::from(counts[3]))
                / n as f64;
        assert!((1.4..=1.9).contains(&mean), "mean devices {mean}");
    }
}
