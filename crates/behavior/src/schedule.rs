//! The activity model: which networks a user touches on a day, and how much.
//!
//! This is the machinery behind the paper's temporal effects (§4.1,
//! Appendix B): on weekdays users split time between home, mobile and work
//! networks; weekends shift time home; lockdowns (per-country dates) shift
//! it much further home and away from both mobile and work. Because network
//! types differ in IPv6 deployment, these shifts move the aggregate IPv6
//! share of users and of requests in opposite directions — exactly the
//! Figure 1 signature.

use ipv6_study_netmodel::{NetworkId, World};
use ipv6_study_stats::dist::{bernoulli, poisson};
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::SimDate;

use crate::population::UserProfile;

/// The kind of session context within a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextKind {
    /// On the home network (any household device).
    Home,
    /// On cellular data (phones).
    Mobile,
    /// At the workplace (computers behind the enterprise NAT).
    Work,
    /// Routed through the user's VPN provider.
    Vpn,
}

/// One (network, device) session bundle on a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionCtx {
    /// Network the traffic egresses from.
    pub net: NetworkId,
    /// Context kind.
    pub kind: ContextKind,
    /// Index into the user's device list.
    pub device_idx: usize,
    /// Number of requests this device makes in this context today.
    pub requests: u32,
    /// First hour of the context's activity window (inclusive).
    pub hour_lo: u8,
    /// Last hour of the window (inclusive).
    pub hour_hi: u8,
}

/// A user's full plan for one day.
#[derive(Debug, Clone, Default)]
pub struct DayPlan {
    /// The session contexts; empty when the user is offline all day.
    pub contexts: Vec<SessionCtx>,
}

/// Mean requests per (context, device) session.
const REQ_HOME: f64 = 6.5;
const REQ_MOBILE: f64 = 5.5;
const REQ_WORK: f64 = 7.0;
const REQ_VPN: f64 = 4.0;

/// Cap on the per-user daily presence probability (the per-user value
/// comes from [`UserProfile::presence`]).
const P_ACTIVE_CAP: f64 = 0.97;

/// Session-context probabilities for (weekday, weekend, lockdown).
/// Lockdown supersedes the weekday/weekend split for home and work;
/// weekends still damp mobile a little under lockdown.
#[derive(Debug, Clone, Copy)]
struct Mix {
    home: f64,
    mobile: f64,
    work: f64,
}

fn mix_for(day_is_weekend: bool, locked_down: bool) -> Mix {
    match (locked_down, day_is_weekend) {
        (false, false) => Mix {
            home: 0.72,
            mobile: 0.74,
            work: 0.55,
        },
        // Weekends: slightly more home Wi-Fi, notably less cellular (no
        // commute) — users whose only IPv6 path is mobile drop out of the
        // IPv6 user count (the paper's weekend dip, §4.1 — small but
        // consistent).
        (false, true) => Mix {
            home: 0.76,
            mobile: 0.62,
            work: 0.06,
        },
        // Lockdowns: everyone is home on Wi-Fi; cellular usage drops hard
        // (the 2020 Wi-Fi offload), and offices close. Losing the mobile
        // path costs more IPv6 users than the extra home time adds, while
        // killing the (v4-heavy) office traffic lifts the IPv6 share of
        // *requests* — Figure 1's scissors.
        (true, false) => Mix {
            home: 0.90,
            mobile: 0.55,
            work: 0.07,
        },
        (true, true) => Mix {
            home: 0.91,
            mobile: 0.50,
            work: 0.02,
        },
    }
}

/// Per-device presence probability within a context.
const P_PHONE_AT_HOME: f64 = 0.75;
const P_COMPUTER_AT_HOME: f64 = 0.55;
const P_COMPUTER_AT_WORK: f64 = 0.85;
const P_VPN_SESSION: f64 = 0.45;

/// Computes the user's plan for `day`.
pub fn day_plan(world: &World, profile: &UserProfile, day: SimDate) -> DayPlan {
    let u = profile.user.raw();
    let d = u64::from(day.index());
    let h = |tag: u32, a: u64| -> u64 {
        let mut s = StableHasher::new(0x5343_4845 ^ u64::from(tag)); // "SCHE"
        s.write_u64(u).write_u64(d).write_u64(a);
        s.finish()
    };

    if !bernoulli(h(0, 0), profile.presence.min(P_ACTIVE_CAP)) {
        return DayPlan::default();
    }

    let country = world.country(profile.household.country_idx);
    let locked = country.lockdown.is_some_and(|ld| day >= ld);
    let mix = mix_for(day.is_weekend(), locked);
    let mut contexts = Vec::new();

    // Work first: working users almost always also show up at home in the
    // evening (few users are work-only), which matters for the weekend
    // and lockdown effects on the IPv6 user share.
    let works_today = profile.work_net.is_some() && bernoulli(h(6, 0), mix.work);
    let home_prob = if works_today {
        mix.home.max(0.88)
    } else {
        mix.home
    };

    // Home: each device present independently.
    if bernoulli(h(1, 0), home_prob) {
        for (i, dev) in profile.devices.iter().enumerate() {
            let p = match dev.kind {
                crate::device::DeviceKind::Phone => P_PHONE_AT_HOME,
                crate::device::DeviceKind::Computer => P_COMPUTER_AT_HOME,
            };
            if bernoulli(h(2, i as u64), p) {
                let requests = draw_requests(h(3, i as u64), REQ_HOME * profile.activity);
                if requests > 0 {
                    let (lo, hi) = if locked || day.is_weekend() {
                        (9, 23)
                    } else {
                        (17, 23)
                    };
                    contexts.push(SessionCtx {
                        net: profile.household.home_net,
                        kind: ContextKind::Home,
                        device_idx: i,
                        requests,
                        hour_lo: lo,
                        hour_hi: hi,
                    });
                }
            }
        }
    }

    // Mobile: the phone(s), on cellular.
    if let Some(mnet) = profile.mobile_net {
        if bernoulli(h(4, 0), mix.mobile) {
            for (i, dev) in profile.devices.iter().enumerate() {
                if dev.kind == crate::device::DeviceKind::Phone {
                    let requests = draw_requests(h(5, i as u64), REQ_MOBILE * profile.activity);
                    if requests > 0 {
                        contexts.push(SessionCtx {
                            net: mnet,
                            kind: ContextKind::Mobile,
                            device_idx: i,
                            requests,
                            hour_lo: 7,
                            hour_hi: 22,
                        });
                    }
                    break; // one phone on cellular per day is plenty
                }
            }
        }
    }

    // Work: computers behind the enterprise NAT, weekday office hours.
    if let Some(wnet) = profile.work_net {
        if works_today {
            let comp = profile
                .devices
                .iter()
                .position(|d| d.kind == crate::device::DeviceKind::Computer);
            // Users without a computer use their phone on office Wi-Fi.
            let idx = comp.unwrap_or(0);
            if bernoulli(
                h(7, 0),
                if comp.is_some() {
                    P_COMPUTER_AT_WORK
                } else {
                    0.5
                },
            ) {
                let requests = draw_requests(h(8, 0), REQ_WORK * profile.activity);
                if requests > 0 {
                    contexts.push(SessionCtx {
                        net: wnet,
                        kind: ContextKind::Work,
                        device_idx: idx,
                        requests,
                        hour_lo: 9,
                        hour_hi: 17,
                    });
                }
            }
        }
    }

    // VPN: habitual users route an evening session through it.
    if let Some(vnet) = profile.vpn_net {
        if bernoulli(h(9, 0), P_VPN_SESSION) {
            let requests = draw_requests(h(10, 0), REQ_VPN * profile.activity);
            if requests > 0 {
                contexts.push(SessionCtx {
                    net: vnet,
                    kind: ContextKind::Vpn,
                    device_idx: 0,
                    requests,
                    hour_lo: 19,
                    hour_hi: 23,
                });
            }
        }
    }

    DayPlan { contexts }
}

fn draw_requests(h: u64, mean: f64) -> u32 {
    poisson(h, mean).min(400) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use ipv6_study_netmodel::World;
    use ipv6_study_telemetry::{Country, UserId};

    fn setup() -> World {
        World::standard(11)
    }

    fn plans_for<'a>(
        world: &'a World,
        pop: &'a Population<'a>,
        day: SimDate,
        n: u64,
    ) -> Vec<DayPlan> {
        (0..n)
            .flat_map(|hh| {
                let prof = pop.household(hh);
                pop.member_ids(&prof)
                    .map(|u| pop.user(u))
                    .collect::<Vec<_>>()
            })
            .map(|u| day_plan(world, &u, day))
            .collect()
    }

    #[test]
    fn plans_are_deterministic() {
        let w = setup();
        let pop = Population::new(&w, 3, 50);
        let u = pop.user(UserId(0));
        let a = day_plan(&w, &u, SimDate::ymd(4, 13));
        let b = day_plan(&w, &u, SimDate::ymd(4, 13));
        assert_eq!(a.contexts, b.contexts);
    }

    #[test]
    fn context_population_rates_are_sane() {
        let w = setup();
        let pop = Population::new(&w, 3, 3000);
        let day = SimDate::ymd(2, 12); // pre-lockdown Wednesday
        let plans = plans_for(&w, &pop, day, 3000);
        let total = plans.len() as f64;
        // Per-user presence tiers average ~0.6, and presence/request draws
        // trim further: the observed daily-active share lands near 50%.
        let active = plans.iter().filter(|p| !p.contexts.is_empty()).count() as f64;
        assert!(
            (0.40..=0.62).contains(&(active / total)),
            "active {}",
            active / total
        );
        let with_work = plans
            .iter()
            .filter(|p| p.contexts.iter().any(|c| c.kind == ContextKind::Work))
            .count() as f64;
        // ~35% employed × 55% office × 85% presence × ~55% active ≈ 0.09.
        assert!(
            (0.04..=0.14).contains(&(with_work / total)),
            "work {}",
            with_work / total
        );
    }

    #[test]
    fn weekends_damp_work() {
        let w = setup();
        let pop = Population::new(&w, 3, 3000);
        let weekday = SimDate::ymd(2, 12);
        let weekend = SimDate::ymd(2, 15); // Saturday
        let count_work = |day| {
            plans_for(&w, &pop, day, 3000)
                .iter()
                .filter(|p| p.contexts.iter().any(|c| c.kind == ContextKind::Work))
                .count()
        };
        let wk = count_work(weekday);
        let we = count_work(weekend);
        assert!(
            we * 4 < wk,
            "weekend work {we} should be well below weekday {wk}"
        );
    }

    #[test]
    fn lockdown_shifts_home() {
        let w = setup();
        let pop = Population::new(&w, 3, 4000);
        // Italy locked down Mar 9; compare an Italian-like aggregate by
        // using the whole population before (Feb 12) and after (Apr 15).
        let before = plans_for(&w, &pop, SimDate::ymd(2, 12), 4000);
        let after = plans_for(&w, &pop, SimDate::ymd(4, 15), 4000);
        let home_share = |plans: &[DayPlan]| {
            let total: usize = plans.iter().map(|p| p.contexts.len()).sum();
            let home: usize = plans
                .iter()
                .flat_map(|p| &p.contexts)
                .filter(|c| c.kind == ContextKind::Home)
                .count();
            home as f64 / total.max(1) as f64
        };
        assert!(
            home_share(&after) > home_share(&before) + 0.03,
            "lockdown should shift sessions home: {} -> {}",
            home_share(&before),
            home_share(&after)
        );
    }

    #[test]
    fn request_counts_scale_with_activity() {
        let w = setup();
        let pop = Population::new(&w, 3, 2000);
        let day = SimDate::ymd(4, 14);
        let mut lo = 0u64;
        let mut hi = 0u64;
        let mut lo_n = 0u64;
        let mut hi_n = 0u64;
        for hh in 0..2000 {
            let prof = pop.household(hh);
            for uid in pop.member_ids(&prof) {
                let u = pop.user(uid);
                let reqs: u32 = day_plan(&w, &u, day)
                    .contexts
                    .iter()
                    .map(|c| c.requests)
                    .sum();
                if u.activity < 0.7 {
                    lo += u64::from(reqs);
                    lo_n += 1;
                } else if u.activity > 1.5 {
                    hi += u64::from(reqs);
                    hi_n += 1;
                }
            }
        }
        assert!(lo_n > 50 && hi_n > 50);
        assert!(
            (hi as f64 / hi_n as f64) > 2.0 * (lo as f64 / lo_n as f64),
            "high-activity users should request much more"
        );
    }

    #[test]
    fn hours_are_within_windows() {
        let w = setup();
        let pop = Population::new(&w, 3, 300);
        for hh in 0..300 {
            let prof = pop.household(hh);
            for uid in pop.member_ids(&prof) {
                let u = pop.user(uid);
                for c in day_plan(&w, &u, SimDate::ymd(4, 16)).contexts {
                    assert!(c.hour_lo <= c.hour_hi && c.hour_hi < 24);
                    assert!(c.device_idx < u.devices.len());
                    assert!(c.requests > 0);
                }
            }
        }
    }

    #[test]
    fn puerto_rico_style_mobile_drop() {
        // Lockdown reduces the mobile context probability.
        let m_weekday = mix_for(false, false).mobile;
        let m_weekend = mix_for(true, false).mobile;
        let m_locked = mix_for(false, true).mobile;
        assert!(m_locked < m_weekday);
        assert!(m_weekend > m_locked);
        let _ = Country::new("PR");
    }
}
