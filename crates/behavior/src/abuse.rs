//! Attacker campaigns and the detection process.
//!
//! Abusive accounts arrive in *campaigns* riding one of three
//! infrastructure types, each reproducing a behavior the paper observes:
//!
//! - **Hosting servers** — rented VMs with stable v4/v6 addresses. Accounts
//!   spread ~one-per-server (§6.1.2: "attackers tend not to use a large
//!   number of abusive accounts on a single IP address"); servers cluster
//!   inside the customer's /56 allocation, producing the /56-level abusive
//!   aggregation of Figure 10a, with no benign users on the same address
//!   (the isolated-v6 effect of Figure 8).
//! - **Residential proxies** — compromised home connections. Every request
//!   exits a different household, so accounts rack up IPv4 addresses that
//!   are *shared with many benign users* (Figure 8's v4 pattern) while
//!   touching IPv6 rarely (proxy software is v4-biased), driving the
//!   v4>v6 inversion of Figure 3.
//! - **Mobile device farms** — phones on carrier CGN: forced IPv4 cycling
//!   within a day versus one stable IPv6 /64 (§5.1.2's hypothesis,
//!   implemented literally).
//!
//! Detection censors lifetimes exactly as §3.3 describes: most accounts are
//! caught within a day; a small *evasive* minority (proxy-heavy campaigns)
//! survives longer and supplies the outlier accounts of §5.1.3.

use ipv6_study_netmodel::{AttachKeys, NetworkId, World};
use ipv6_study_stats::dist::{bernoulli, geometric, lognormal, poisson, uniform_range};
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::{
    AbuseInfo, AbuseLabels, DateRange, RequestRecord, RequestSink, SimDate, UserId,
};

use crate::population::{Population, MAX_MEMBERS};

/// Bit marking abusive user ids (benign ids stay far below this).
pub const ABUSE_ID_BASE: u64 = 1 << 48;

/// Probability an ordinary account is detected on any given active day
/// (≈ 78% caught on day one — "the vast majority … within a day", §3.3).
const DETECT_P_ORDINARY: f64 = 0.85;
/// Detection probability per day for evasive campaigns.
const DETECT_P_EVASIVE: f64 = 0.18;
/// Fraction of campaigns that are evasive.
const EVASIVE_FRACTION: f64 = 0.05;
/// Mean requests per abusive account per active day.
const REQ_PER_DAY: f64 = 12.0;

/// Infrastructure a campaign operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignInfra {
    /// Rented servers on a hosting provider.
    Hosting {
        /// The provider.
        net: NetworkId,
        /// Servers rented (accounts spread across them).
        servers: u32,
    },
    /// A pool of compromised residential connections.
    ResidentialProxy {
        /// Proxy pool size available to the campaign.
        pool: u32,
    },
    /// Phones on a mobile carrier.
    MobileFarm {
        /// The carrier.
        net: NetworkId,
        /// Farm phones (accounts spread across them).
        devices: u32,
    },
}

/// One campaign's static description.
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    /// Campaign index.
    pub id: u32,
    /// Infrastructure.
    pub infra: CampaignInfra,
    /// First account-creation day.
    pub start: SimDate,
    /// Days over which accounts are created.
    pub creation_window: u16,
    /// Total accounts the campaign creates.
    pub accounts: u32,
    /// Whether the campaign evades detection for longer.
    pub evasive: bool,
}

/// The attacker simulation: campaigns, accounts, labels, and emission.
#[derive(Debug)]
pub struct AbuseSim<'w> {
    world: &'w World,
    seed: u64,
    campaigns: u32,
    /// Household count of the benign population (proxy pools draw from it).
    households: u64,
    window: DateRange,
    /// Multiplier on per-day detection probabilities (1.0 = the platform's
    /// real posture; lower = the slow-detection ablation).
    detect_scale: f64,
}

impl<'w> AbuseSim<'w> {
    /// Creates an attacker simulation with `campaigns` campaigns whose
    /// activity falls inside `window`, preying on a benign population of
    /// `households` homes.
    pub fn new(
        world: &'w World,
        seed: u64,
        campaigns: u32,
        households: u64,
        window: DateRange,
    ) -> Self {
        assert!(households > 0);
        Self {
            world,
            seed,
            campaigns,
            households,
            window,
            detect_scale: 1.0,
        }
    }

    /// Scales detection speed (0 < scale ≤ 1; e.g. 0.5 halves the per-day
    /// catch probability — the "slower defender" ablation).
    pub fn with_detect_scale(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "detect scale must be in (0, 1]"
        );
        self.detect_scale = scale;
        self
    }

    /// Number of campaigns.
    pub fn num_campaigns(&self) -> u32 {
        self.campaigns
    }

    fn h(&self, tag: u32, a: u64, b: u64) -> u64 {
        let mut s = StableHasher::new(self.seed ^ 0x4142_5553 ^ (u64::from(tag) << 32)); // "ABUS"
        s.write_u64(a).write_u64(b);
        s.finish()
    }

    /// The abusive account id for (campaign, sequence).
    pub fn account_id(campaign: u32, seq: u32) -> UserId {
        debug_assert!(seq < (1 << 16));
        UserId(ABUSE_ID_BASE | (u64::from(campaign) << 16) | u64::from(seq))
    }

    /// Whether a user id denotes an abusive account from this simulation.
    pub fn is_abusive_id(user: UserId) -> bool {
        user.raw() & ABUSE_ID_BASE != 0
    }

    /// The campaign at index `c`.
    pub fn campaign(&self, c: u32) -> Campaign {
        let base = self.h(1, u64::from(c), 0);
        let evasive = bernoulli(self.h(2, u64::from(c), 0), EVASIVE_FRACTION);
        let infra = match uniform_range(self.h(3, u64::from(c), 0), 100) {
            0..=43 => CampaignInfra::Hosting {
                net: self.world.pick_hosting(self.h(4, u64::from(c), 0)),
                servers: 4 + uniform_range(self.h(5, u64::from(c), 0), 28) as u32,
            },
            44..=59 => CampaignInfra::ResidentialProxy {
                // Pools are reused day over day — the infrastructure
                // persistence that gives IPv4 actioning its high recall
                // (Figure 11's 65.8% at threshold 0).
                pool: if evasive {
                    400 + uniform_range(self.h(6, u64::from(c), 0), 1_200) as u32
                } else {
                    12 + uniform_range(self.h(6, u64::from(c), 0), 36) as u32
                },
            },
            _ => {
                // A mobile carrier in a weighted-random country.
                let country = self.world.pick_country(self.h(7, u64::from(c), 0));
                CampaignInfra::MobileFarm {
                    net: self.world.pick_mobile(country, self.h(8, u64::from(c), 0)),
                    devices: 6 + uniform_range(self.h(9, u64::from(c), 0), 40) as u32,
                }
            }
        };
        let span = u64::from(self.window.num_days());
        let start = self.window.start + uniform_range(base, span) as u16;
        let creation_window = 1 + uniform_range(self.h(10, u64::from(c), 0), 10) as u16;
        let accounts = lognormal(self.h(11, u64::from(c), 0), 3.3, 0.6).clamp(3.0, 1_500.0) as u32;
        Campaign {
            id: c,
            infra,
            start,
            creation_window,
            accounts,
            evasive,
        }
    }

    /// Creation and detection dates for one account.
    pub fn account_dates(&self, camp: &Campaign, seq: u32) -> AbuseInfo {
        let key = (u64::from(camp.id) << 32) | u64::from(seq);
        let offset = uniform_range(self.h(12, key, 0), u64::from(camp.creation_window)) as u16;
        let created_idx = (u32::from(camp.start.index()) + u32::from(offset)).min(365);
        let created = SimDate::from_index(created_idx as u16);
        let p = self.detect_scale
            * if camp.evasive {
                DETECT_P_EVASIVE
            } else {
                DETECT_P_ORDINARY
            };
        let extra_days = geometric(self.h(13, key, 0), p).min(27) as u16;
        let detected_idx = (u32::from(created.index()) + u32::from(extra_days)).min(365);
        AbuseInfo {
            created,
            detected: SimDate::from_index(detected_idx as u16),
        }
    }

    /// The full label dataset (the platform's abusive-account snapshot).
    pub fn labels(&self) -> AbuseLabels {
        let mut labels = AbuseLabels::new();
        for c in 0..self.campaigns {
            let camp = self.campaign(c);
            for seq in 0..camp.accounts {
                labels.insert(Self::account_id(c, seq), self.account_dates(&camp, seq));
            }
        }
        labels
    }

    /// Emits every abusive request on `day`.
    pub fn emit_day(&self, pop: &Population<'_>, day: SimDate, out: &mut dyn RequestSink) {
        self.emit_day_campaigns(pop, day, 0..self.campaigns, out);
    }

    /// Emits `day`'s abusive requests for a contiguous campaign range —
    /// the shard unit of the parallel driver. Campaigns are independent of
    /// each other, so covering `0..num_campaigns()` with disjoint ranges in
    /// ascending order reproduces [`AbuseSim::emit_day`] exactly.
    pub fn emit_day_campaigns(
        &self,
        pop: &Population<'_>,
        day: SimDate,
        campaigns: std::ops::Range<u32>,
        out: &mut dyn RequestSink,
    ) {
        debug_assert!(campaigns.end <= self.campaigns);
        for c in campaigns {
            let camp = self.campaign(c);
            // Quick reject: campaign can't be active outside
            // [start, start + window + max lifespan].
            // Both arms of the evasion branch cap extra lifetime at 28
            // days (geometric(..).min(27) + 1), so the horizon is uniform.
            let horizon = u32::from(camp.start.index()) + u32::from(camp.creation_window) + 28;
            if day < camp.start || u32::from(day.index()) > horizon {
                continue;
            }
            for seq in 0..camp.accounts {
                let dates = self.account_dates(&camp, seq);
                if day < dates.created || day > dates.detected {
                    continue;
                }
                self.emit_account_day(pop, &camp, seq, day, out);
            }
        }
    }

    fn emit_account_day(
        &self,
        pop: &Population<'_>,
        camp: &Campaign,
        seq: u32,
        day: SimDate,
        out: &mut dyn RequestSink,
    ) {
        fn dates_created(sim: &AbuseSim<'_>, camp: &Campaign, seq: u32) -> u16 {
            sim.account_dates(camp, seq).created.index()
        }
        let account = Self::account_id(camp.id, seq);
        let key = (u64::from(camp.id) << 32) | u64::from(seq);
        let d = u64::from(day.index());
        let n_req = poisson(self.h(20, key, d), REQ_PER_DAY).clamp(1, 200) as u32;

        for j in 0..n_req {
            let jd = (d << 16) | u64::from(j);
            let (ip, asn, country) = match camp.infra {
                CampaignInfra::Hosting { net, servers } => {
                    let network = self.world.network(net);
                    // IPv6 servers are re-addressed daily (v6 space is
                    // free), IPv4 servers weekly (v4 is scarce and
                    // reused): new abusive accounts appear on fresh v6
                    // addresses — capping /128 actioning recall (§7.1) —
                    // while staying inside the campaign's /56, and v4
                    // infrastructure persists, giving IPv4 actioning its
                    // high recall.
                    let created = dates_created(self, camp, seq);
                    let server6 = self.h(30, u64::from(created), u64::from(seq % servers));
                    let server4 = self.h(31, u64::from(created / 7), u64::from(seq % servers));
                    // Campaigns also re-rent their customer allocation
                    // (a fresh /56) roughly weekly, bounding how long /56
                    // actioning keeps catching them.
                    let customer = (u64::from(camp.id) << 8) | u64::from(created / 7);
                    let v6ok = network.v6.is_some();
                    let over_v6 = v6ok && bernoulli(self.h(21, key, jd), 0.55);
                    let ip = if over_v6 {
                        std::net::IpAddr::V6(
                            network
                                .v6_server_address(customer, server6)
                                .expect("hosting provider has v6"),
                        )
                    } else {
                        std::net::IpAddr::V4(network.v4_server_address(customer, server4))
                    };
                    (ip, network.asn, network.country)
                }
                CampaignInfra::ResidentialProxy { pool } => {
                    // Proxy sessions are sticky: the account rides a small
                    // per-day subset of the campaign's pool (rotating per
                    // session, not per request).
                    let n_prox = 1 + poisson(self.h(32, key, d), 0.9).min(6);
                    let which = uniform_range(self.h(33, key, jd), n_prox);
                    let slot = uniform_range(self.h(22, key, (d << 8) | which), u64::from(pool));
                    let hh_idx =
                        uniform_range(self.h(23, u64::from(camp.id), slot), self.households);
                    let hh = pop.household(hh_idx);
                    let network = self.world.network(hh.home_net);
                    let member_dev = hh_idx * MAX_MEMBERS * 4; // member 0, device 0
                    let keys = AttachKeys {
                        user: hh_idx * MAX_MEMBERS,
                        device: member_dev,
                        household: hh_idx,
                    };
                    let v6ok = network.subscriber_has_v6(hh_idx, day);
                    let over_v6 = v6ok && bernoulli(self.h(24, key, jd), 0.15);
                    let ip = if over_v6 {
                        match network.v6_address(&keys, day, 0, 0, None) {
                            Some(a) => std::net::IpAddr::V6(a),
                            None => std::net::IpAddr::V4(network.v4_address(&keys, day, 0)),
                        }
                    } else {
                        std::net::IpAddr::V4(network.v4_address(&keys, day, 0))
                    };
                    (ip, network.asn, network.country)
                }
                CampaignInfra::MobileFarm { net, devices } => {
                    let network = self.world.network(net);
                    let phone = u64::from(seq % devices);
                    // Farm devices get ids far outside the benign space.
                    let dev_key = ABUSE_ID_BASE | (u64::from(camp.id) << 8) | phone;
                    // One farm = one locale: all phones behind the same
                    // regional CGN gateway.
                    let farm_key = ABUSE_ID_BASE | u64::from(camp.id);
                    let keys = AttachKeys {
                        user: dev_key,
                        device: dev_key,
                        household: farm_key,
                    };
                    let v6ok = network.subscriber_has_v6(dev_key, day);
                    let over_v6 = v6ok && bernoulli(self.h(25, key, jd), 0.30);
                    let ip = if over_v6 {
                        match network.v6_address(&keys, day, 0, 0, None) {
                            Some(a) => std::net::IpAddr::V6(a),
                            None => {
                                let cyc = uniform_range(self.h(26, key, jd), 2) as u32;
                                std::net::IpAddr::V4(network.v4_address(&keys, day, cyc))
                            }
                        }
                    } else {
                        // CGN cycling: the forced-v4-diversity mechanism.
                        let cyc = uniform_range(self.h(26, key, jd), 2) as u32;
                        std::net::IpAddr::V4(network.v4_address(&keys, day, cyc))
                    };
                    (ip, network.asn, network.country)
                }
            };

            let hour = uniform_range(self.h(27, key, jd), 24) as u8;
            let min = uniform_range(self.h(28, key, jd), 60) as u8;
            let sec = uniform_range(self.h(29, key, jd), 60) as u8;
            out.push(RequestRecord {
                ts: day.at(hour, min, sec),
                user: account,
                ip,
                asn,
                country,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6_study_telemetry::time::focus_week;
    use ipv6_study_telemetry::FnSink;

    fn setup() -> World {
        World::standard(13)
    }

    fn window() -> DateRange {
        DateRange::new(SimDate::ymd(3, 1), SimDate::ymd(4, 19))
    }

    #[test]
    fn ids_are_marked_and_disjoint_from_benign() {
        let id = AbuseSim::account_id(3, 17);
        assert!(AbuseSim::is_abusive_id(id));
        assert!(!AbuseSim::is_abusive_id(UserId(123_456)));
    }

    #[test]
    fn most_accounts_die_within_a_day() {
        let w = setup();
        let sim = AbuseSim::new(&w, 1, 80, 10_000, window());
        let labels = sim.labels();
        assert!(labels.len() > 500, "labels: {}", labels.len());
        let day1 = labels.detected_within(0);
        assert!(day1 > 0.6, "day-one detection rate {day1}");
        let week = labels.detected_within(6);
        assert!(week > 0.85, "week detection rate {week}");
        // But evasive accounts exist.
        assert!(week < 1.0, "some accounts survive past a week");
    }

    #[test]
    fn emission_respects_lifetimes() {
        let w = setup();
        let pop = Population::new(&w, 2, 2_000);
        let sim = AbuseSim::new(&w, 1, 30, 2_000, window());
        let labels = sim.labels();
        for day in focus_week().days() {
            let mut recs = Vec::new();
            sim.emit_day(&pop, day, &mut FnSink(|r| recs.push(r)));
            for r in recs {
                let info = labels.get(r.user).expect("emitted account is labeled");
                assert!(day >= info.created && day <= info.detected);
                assert!(AbuseSim::is_abusive_id(r.user));
            }
        }
    }

    #[test]
    fn infra_mix_shapes_protocol_usage() {
        let w = setup();
        let pop = Population::new(&w, 2, 5_000);
        let sim = AbuseSim::new(&w, 1, 120, 5_000, window());
        let mut v4_addrs_per_account: std::collections::HashMap<
            UserId,
            std::collections::HashSet<std::net::IpAddr>,
        > = Default::default();
        let mut v6_addrs_per_account: std::collections::HashMap<
            UserId,
            std::collections::HashSet<std::net::IpAddr>,
        > = Default::default();
        for day in window().days() {
            sim.emit_day(
                &pop,
                day,
                &mut FnSink(|r: RequestRecord| {
                    let m = if r.is_v6() {
                        &mut v6_addrs_per_account
                    } else {
                        &mut v4_addrs_per_account
                    };
                    m.entry(r.user).or_default().insert(r.ip);
                }),
            );
        }
        assert!(!v4_addrs_per_account.is_empty() && !v6_addrs_per_account.is_empty());
        let mean = |m: &std::collections::HashMap<
            UserId,
            std::collections::HashSet<std::net::IpAddr>,
        >| { m.values().map(|s| s.len() as f64).sum::<f64>() / m.len() as f64 };
        // The inversion: abusive accounts hold more v4 than v6 addresses.
        assert!(
            mean(&v4_addrs_per_account) > mean(&v6_addrs_per_account),
            "v4 {} vs v6 {}",
            mean(&v4_addrs_per_account),
            mean(&v6_addrs_per_account)
        );
    }

    #[test]
    fn hosting_accounts_sit_in_shared_56s() {
        use ipv6_study_netaddr::Ipv6Prefix;
        let w = setup();
        let pop = Population::new(&w, 2, 1_000);
        let sim = AbuseSim::new(&w, 1, 200, 1_000, window());
        // Find a hosting campaign with enough accounts.
        let camp = (0..200)
            .map(|c| sim.campaign(c))
            .find(|c| matches!(c.infra, CampaignInfra::Hosting { .. }) && c.accounts >= 10)
            .expect("a hosting campaign exists");
        let mut p56s = std::collections::HashSet::new();
        let mut p64s = std::collections::HashSet::new();
        for day in window().days() {
            let mut recs = Vec::new();
            sim.emit_day(
                &pop,
                day,
                &mut FnSink(|r: RequestRecord| {
                    if r.user.raw() >> 16 == (ABUSE_ID_BASE >> 16) | u64::from(camp.id) {
                        recs.push(r);
                    }
                }),
            );
            for r in recs {
                if let Some(a) = r.ipv6() {
                    p56s.insert(Ipv6Prefix::containing(a, 56));
                    p64s.insert(Ipv6Prefix::containing(a, 64));
                }
            }
        }
        assert!(!p64s.is_empty(), "campaign used v6");
        assert!(
            p56s.len() <= 2,
            "servers share the customer /56: {}",
            p56s.len()
        );
        assert!(p64s.len() >= p56s.len(), "servers spread across /64s");
    }

    #[test]
    fn campaign_ranges_cover_emit_day_exactly() {
        let w = setup();
        let pop = Population::new(&w, 2, 1_000);
        let sim = AbuseSim::new(&w, 7, 24, 1_000, window());
        let day = SimDate::ymd(4, 15);
        let mut whole = Vec::new();
        sim.emit_day(&pop, day, &mut FnSink(|r| whole.push(r)));
        let mut sharded = Vec::new();
        for lo in (0..24).step_by(7) {
            let hi = (lo + 7).min(24);
            sim.emit_day_campaigns(&pop, day, lo..hi, &mut FnSink(|r| sharded.push(r)));
        }
        assert_eq!(whole, sharded);
        assert!(!whole.is_empty(), "mid-window day has abusive traffic");
    }

    #[test]
    fn campaigns_are_deterministic() {
        let w = setup();
        let sim = AbuseSim::new(&w, 1, 10, 1_000, window());
        for c in 0..10 {
            let a = sim.campaign(c);
            let b = sim.campaign(c);
            assert_eq!(a.accounts, b.accounts);
            assert_eq!(a.start, b.start);
            assert_eq!(a.infra, b.infra);
        }
    }
}
