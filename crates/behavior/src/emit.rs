//! Materializing a user-day into request records.
//!
//! Protocol choice follows dual-stack reality: when the network path and
//! the device both support IPv6, most requests prefer it (happy eyeballs;
//! Zander et al. measured fast v6→v4 failover, and the paper observes users'
//! requests "often distributed between IPv4 and IPv6", §4.1) — so even IPv6
//! users emit a healthy share of IPv4 requests, which keeps the request-level
//! IPv6 share (22–25%) well under the user-level share (34–36%).

use crate::device::Transition;
use ipv6_study_netmodel::{AttachKeys, World};
use ipv6_study_stats::dist::{bernoulli, poisson, uniform_range};
use ipv6_study_stats::hash::StableHasher;
use ipv6_study_telemetry::{RequestRecord, RequestSink, SimDate};

use crate::population::UserProfile;
use crate::schedule::{ContextKind, DayPlan, SessionCtx};

/// Probability a dual-stack request goes over IPv6.
pub const HAPPY_EYEBALLS_V6: f64 = 0.70;

/// Emits every request of `plan` as [`RequestRecord`]s into `out`.
pub fn emit_user_day(
    world: &World,
    profile: &UserProfile,
    day: SimDate,
    plan: &DayPlan,
    out: &mut dyn RequestSink,
) {
    for ctx in &plan.contexts {
        emit_context(world, profile, day, ctx, out);
    }
}

fn emit_context(
    world: &World,
    profile: &UserProfile,
    day: SimDate,
    ctx: &SessionCtx,
    out: &mut dyn RequestSink,
) {
    let net = world.network(ctx.net);
    let device = &profile.devices[ctx.device_idx];
    let u = profile.user.raw();

    let h = |tag: u32, a: u64, b: u64| -> u64 {
        let mut s = StableHasher::new(0x454D_4954 ^ u64::from(tag)); // "EMIT"
        s.write_u64(u)
            .write_u64(u64::from(day.index()))
            .write_u64(u64::from(ctx.net.0) << 8 | ctx.device_idx as u64)
            .write_u64(a)
            .write_u64(b);
        s.finish()
    };

    // Whose subscription gates IPv6 on this path?
    let subscriber_key = match ctx.kind {
        ContextKind::Home => profile.household.household.raw(),
        ContextKind::Mobile | ContextKind::Vpn => u,
        ContextKind::Work => profile.company,
    };
    let keys = AttachKeys {
        user: u,
        device: device.device.raw(),
        household: match ctx.kind {
            ContextKind::Work => profile.company,
            _ => profile.household.household.raw(),
        },
    };

    let path_v6 = device.v6_capable && net.subscriber_has_v6(subscriber_key, day);

    // Intra-day variability: CGN v4 cycles and mobile v6 reattaches.
    // Churners multiply both rates, IPv4 harder than IPv6 (§5.1.3's
    // more-extreme IPv4 outlier tail).
    let v4_churn = profile.churn_factor;
    let v6_churn = 1.0 + (profile.churn_factor - 1.0) * 0.25;
    let v4_cycles = poisson(h(1, 0, 0), net.v4_intra_day_cycles() * v4_churn).min(5_000) as u32;
    let v6_attaches = poisson(h(2, 0, 0), net.v6_intra_day_attaches() * v6_churn).min(5_000) as u32;
    // Extra temporary-IID rotations within the day (RFC 4941 lifetimes are
    // ~daily but interface resets mint fresh temporaries): heavier on
    // mobile. This is the main source of >5-addresses-per-day users
    // (Figure 2's upper tail).
    let slot_mean = match ctx.kind {
        ContextKind::Mobile => 1.4,
        ContextKind::Home => 0.5,
        _ => 0.2,
    };
    let v6_slots = poisson(h(9, 0, 0), slot_mean).min(5_000) as u32;
    let eui = device.eui64_mac_on(day);

    for j in 0..ctx.requests {
        let jj = u64::from(j);
        let over_v6 = path_v6 && bernoulli(h(3, jj, 0), HAPPY_EYEBALLS_V6);
        // The network whose pool the source address came from (SIM-hopping
        // churners may egress a different carrier; the record's ASN and
        // country must match the address).
        let mut egress_net = net;
        let ip = if over_v6 {
            let attach = uniform_range(h(4, jj, 0), u64::from(v6_attaches) + 1) as u32;
            let slot = uniform_range(h(9, jj, 1), u64::from(v6_slots) + 1) as u32;
            if let Some(t) = device.transition {
                // Relic tunnel clients: their "IPv6" address embeds the
                // IPv4 path (§4.4's <0.01% of users).
                std::net::IpAddr::V6(transition_address(
                    t,
                    net.v4_address(&keys, day, 0),
                    h(10, jj, 0),
                ))
            } else {
                match net.v6_address(&keys, day, attach, slot, eui) {
                    Some(a) => std::net::IpAddr::V6(a),
                    None => std::net::IpAddr::V4(net.v4_address(&keys, day, 0)),
                }
            }
        } else {
            let cycle = uniform_range(h(5, jj, 0), u64::from(v4_cycles) + 1) as u32;
            // Churners SIM-hop: on cellular, heavy cycles spill across the
            // country's other carriers, so one user can burn through far
            // more IPv4 addresses than any single CGN pool holds — the
            // §5.1.3 outliers the paper localized to mobile ASNs.
            if profile.churn_factor > 1.0 && ctx.kind == ContextKind::Mobile && cycle >= 8 {
                let alt = world.pick_mobile(
                    profile.household.country_idx,
                    h(11, u64::from(cycle / 8), 0),
                );
                egress_net = world.network(alt);
                std::net::IpAddr::V4(egress_net.v4_address(&keys, day, cycle))
            } else {
                std::net::IpAddr::V4(net.v4_address(&keys, day, cycle))
            }
        };

        let span = u64::from(ctx.hour_hi - ctx.hour_lo) + 1;
        let hour = ctx.hour_lo + uniform_range(h(6, jj, 0), span) as u8;
        let min = uniform_range(h(7, jj, 0), 60) as u8;
        let sec = uniform_range(h(8, jj, 0), 60) as u8;

        out.push(RequestRecord {
            ts: day.at(hour, min, sec),
            user: profile.user,
            ip,
            asn: egress_net.asn,
            country: egress_net.country,
        });
    }
}

/// Builds a 6to4 or Teredo address embedding the device's IPv4 path.
fn transition_address(t: Transition, v4: std::net::Ipv4Addr, h: u64) -> std::net::Ipv6Addr {
    let v4 = u128::from(u32::from(v4));
    let raw = match t {
        // 2002:V4:V4:subnet::IID
        Transition::SixToFour => (0x2002u128 << 112) | (v4 << 80) | u128::from(h >> 16),
        // 2001:0:server:flags:... (we keep the prefix exact and the rest
        // opaque; the classifier only keys on 2001:0::/32).
        Transition::Teredo => (0x2001_0000u128 << 96) | (v4 << 48) | u128::from(h >> 32),
    };
    std::net::Ipv6Addr::from(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::schedule::day_plan;
    use ipv6_study_netmodel::World;
    use ipv6_study_telemetry::{FnSink, UserId};

    fn collect_day(
        world: &World,
        pop: &Population,
        uid: UserId,
        day: SimDate,
    ) -> Vec<RequestRecord> {
        let prof = pop.user(uid);
        let plan = day_plan(world, &prof, day);
        let mut v = Vec::new();
        emit_user_day(world, &prof, day, &plan, &mut FnSink(|r| v.push(r)));
        v
    }

    #[test]
    fn transition_addresses_classify_correctly() {
        use ipv6_study_netaddr::IidClass;
        let a = transition_address(Transition::SixToFour, "192.0.2.1".parse().unwrap(), 12345);
        assert_eq!(IidClass::classify(a), IidClass::SixToFour);
        let b = transition_address(Transition::Teredo, "192.0.2.1".parse().unwrap(), 12345);
        assert_eq!(IidClass::classify(b), IidClass::Teredo);
    }

    #[test]
    fn emission_is_deterministic_and_well_formed() {
        let w = World::standard(5);
        let pop = Population::new(&w, 9, 200);
        let day = SimDate::ymd(4, 14);
        for hh in 0..50u64 {
            let prof = pop.household(hh);
            for uid in pop.member_ids(&prof) {
                let a = collect_day(&w, &pop, uid, day);
                let b = collect_day(&w, &pop, uid, day);
                assert_eq!(a, b);
                for r in &a {
                    assert_eq!(r.ts.date(), day);
                    assert_eq!(r.user, uid);
                }
            }
        }
    }

    #[test]
    fn dual_stack_users_mix_protocols() {
        let w = World::standard(5);
        let pop = Population::new(&w, 9, 3000);
        let day = SimDate::ymd(4, 14);
        let mut v6_users = 0u32;
        let mut mixed_users = 0u32;
        for hh in 0..3000u64 {
            let prof = pop.household(hh);
            for uid in pop.member_ids(&prof) {
                let recs = collect_day(&w, &pop, uid, day);
                let v6 = recs.iter().filter(|r| r.is_v6()).count();
                if v6 > 0 {
                    v6_users += 1;
                    if v6 < recs.len() {
                        mixed_users += 1;
                    }
                }
            }
        }
        assert!(v6_users > 300, "some v6 users expected, got {v6_users}");
        assert!(
            f64::from(mixed_users) / f64::from(v6_users) > 0.5,
            "most v6 users also send v4 ({mixed_users}/{v6_users})"
        );
    }

    #[test]
    fn aggregate_v6_share_is_in_the_papers_band() {
        let w = World::standard(5);
        let pop = Population::new(&w, 9, 6000);
        let day = SimDate::ymd(2, 12); // pre-lockdown weekday
        let mut users_any = 0u32;
        let mut users_v6 = 0u32;
        let mut req_total = 0u64;
        let mut req_v6 = 0u64;
        for hh in 0..6000u64 {
            let prof = pop.household(hh);
            for uid in pop.member_ids(&prof) {
                let recs = collect_day(&w, &pop, uid, day);
                if recs.is_empty() {
                    continue;
                }
                users_any += 1;
                let v6 = recs.iter().filter(|r| r.is_v6()).count() as u64;
                if v6 > 0 {
                    users_v6 += 1;
                }
                req_total += recs.len() as u64;
                req_v6 += v6;
            }
        }
        let user_share = f64::from(users_v6) / f64::from(users_any);
        let req_share = req_v6 as f64 / req_total as f64;
        // Paper: 34–36% of users, 22–25% of requests. Allow simulator slack.
        assert!(
            (0.28..=0.44).contains(&user_share),
            "user share {user_share}"
        );
        assert!(
            (0.17..=0.32).contains(&req_share),
            "request share {req_share}"
        );
        assert!(user_share > req_share, "user share exceeds request share");
    }

    #[test]
    fn requests_egress_from_the_planned_networks() {
        let w = World::standard(5);
        let pop = Population::new(&w, 9, 100);
        let day = SimDate::ymd(4, 16);
        for hh in 0..100u64 {
            let prof = pop.household(hh);
            for uid in pop.member_ids(&prof) {
                let user = pop.user(uid);
                if user.churn_factor > 1.0 {
                    // SIM-hopping churners legitimately egress through
                    // carriers outside the plan.
                    continue;
                }
                let plan = day_plan(&w, &user, day);
                let nets: std::collections::HashSet<_> =
                    plan.contexts.iter().map(|c| w.network(c.net).asn).collect();
                let mut recs = Vec::new();
                emit_user_day(&w, &user, day, &plan, &mut FnSink(|r| recs.push(r)));
                for r in recs {
                    assert!(nets.contains(&r.asn), "record ASN from planned networks");
                }
            }
        }
    }

    /// §5.1.3 regression: churner users accumulate far more IPv4 than
    /// IPv6 addresses over a week, and far more than ordinary users.
    #[test]
    fn churners_accumulate_v4_heavy_address_tails() {
        use std::collections::HashSet;
        let w = World::sized(42, 4_000);
        let pop = Population::new(&w, 42 ^ 0x504F_5055, 4_000);
        let mut churner_v4_max = 0usize;
        let mut churner_v6_max = 0usize;
        let mut found = 0;
        'outer: for hh in 0..4_000u64 {
            let hprof = pop.household(hh);
            for uid in pop.member_ids(&hprof) {
                let u = pop.user(uid);
                if u.churn_factor > 1.0 {
                    found += 1;
                    let mut v4 = HashSet::new();
                    let mut v6 = HashSet::new();
                    for d in 0..7u16 {
                        let day = SimDate::ymd(4, 13) + d;
                        let plan = crate::schedule::day_plan(&w, &u, day);
                        emit_user_day(
                            &w,
                            &u,
                            day,
                            &plan,
                            &mut FnSink(|r: RequestRecord| {
                                if r.is_v6() {
                                    v6.insert(r.ip);
                                } else {
                                    v4.insert(r.ip);
                                }
                            }),
                        );
                    }
                    churner_v4_max = churner_v4_max.max(v4.len());
                    churner_v6_max = churner_v6_max.max(v6.len());
                    if found >= 12 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(found >= 5, "expected several churners, found {found}");
        assert!(
            churner_v4_max > 40,
            "churner v4 tail too small: {churner_v4_max}"
        );
        assert!(
            churner_v4_max > churner_v6_max,
            "v4 outliers must exceed v6: {churner_v4_max} vs {churner_v6_max}"
        );
    }
}
